//! # sim-verify — independent conformance checking for the simulator
//!
//! The timing layers (`dram-sim`, `mem-sched`) and the protocol layer
//! (`ring-oram`) each enforce their own rules, but a bug in an enforcement
//! point silently corrupts every result built on top of it. This crate
//! re-validates both from the *outside*, using only observable artifacts:
//!
//! * [`ShadowTimingChecker`] — a from-scratch re-derivation of the JEDEC
//!   constraints (tRCD, tRP, tRAS, tRC, tCCD, tRRD, tFAW, tWTR, tWR, tRTP,
//!   tRFC/tREFI, command/data bus arbitration) applied to the controller's
//!   command trace after the fact. It shares no state with `dram-sim`'s
//!   bank/rank/channel machines; agreement between the two is the evidence.
//! * [`ProtocolAuditor`] — the protocol-aware invariant auditor, one
//!   concrete auditor per protocol family: [`OramAuditor`] replays the
//!   [`ring_oram::AccessPlan`] stream against the Ring ORAM invariants
//!   (stash occupancy stays below its bound, slot indices stay inside the
//!   Compact Bucket's `Z + S - Y` physical slots, no bucket slot is read
//!   twice between reshuffles, no bucket is touched more than `S` times
//!   per epoch, evictions fire at exactly one per `A` read paths);
//!   [`PathAuditor`] and [`CircuitAuditor`] pin their protocols'
//!   full-path plan shapes and stash bounds.
//! * [`oracle`] — differential-run primitives: extracting the data-command
//!   (RD/WR) sequence from a trace, checking the transaction-order security
//!   contract, and locating the first divergence between two runs.
//! * [`PolicyAuditor`] — the scheduling-policy contract: every policy in
//!   `mem-sched`'s policy lab (except the explicitly insecure
//!   unconstrained ablation) must preserve the transaction-ordered
//!   data-command sequence. The auditor streams a run's trace through the
//!   order oracle and folds a canonical (intra-transaction
//!   order-insensitive) digest, so any two conforming policies can be
//!   proven observably equivalent by digest equality.
//! * [`ShardResidencyAuditor`] — the sharded engine's global invariant:
//!   per-shard residency snapshots must partition the block address space
//!   (no block resident in two shards, no block routed to the wrong shard).
//! * [`ServiceAuditor`] — the serving layer's contracts: tenant queue
//!   depths stay within capacity, every request resolves exactly once
//!   (completed / timed out / rejected), and under the fixed-rate policy
//!   the submission envelope is a pure function of the policy clock —
//!   never of the offered load (the timing-channel contract).
//! * [`StreamConformance`] — the backend-agnostic bundle of the stream
//!   checkers above, selecting which apply to a given memory backend (the
//!   JEDEC shadow layer only attaches when a cycle-accurate DRAM model is
//!   behind the trace).
//!
//! Everything here is passive and deterministic: checkers consume event
//! streams, never influence scheduling, and report [`Violation`]s that the
//! embedding layer (tests, `string-oram`'s `VerifyConfig`) surfaces or
//! panics on.

#![warn(missing_docs)]
#![warn(clippy::all)]
// Library code must surface failures as values or documented panics, never
// as ad-hoc unwraps; tests are free to unwrap (a panic IS the failure).
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod audit;
pub mod oracle;
pub mod policy;
pub mod service;
pub mod shadow;
pub mod shard;
pub mod stream;
pub mod violation;

pub use audit::{CircuitAuditor, OramAuditor, PathAuditor, ProtocolAuditor};
pub use oracle::{
    check_txn_order, data_commands, first_divergence, grouped_by_txn, DataCmd, TxnOrderChecker,
};
pub use policy::PolicyAuditor;
pub use service::{AuditedPolicy, RequestOutcome, ServiceAuditor};
pub use shadow::ShadowTimingChecker;
pub use shard::ShardResidencyAuditor;
pub use stream::StreamConformance;
pub use violation::{Rule, Violation};
