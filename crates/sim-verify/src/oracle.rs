//! Differential-run primitives.
//!
//! The paper's Proactive Bank scheduler is only secure if its *data*
//! command sequence (RD/WR — the commands an attacker on the memory bus can
//! attribute to transactions) is indistinguishable from the baseline
//! transaction-based scheduler's. This module extracts that sequence from a
//! recorded command trace, checks the transaction-order contract on it, and
//! locates the first divergence between two runs that must agree.

use dram_sim::{CommandKind, DramLocation};
use mem_sched::{CommandEvent, TxnId};

use crate::violation::{Rule, Violation};

/// One data (RD/WR) command from a trace, reduced to the fields an
/// on-bus observer can see and attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataCmd {
    /// Transaction the command served.
    pub txn: TxnId,
    /// The DRAM coordinates accessed.
    pub loc: DramLocation,
    /// `true` for WR, `false` for RD.
    pub is_write: bool,
    /// Issue cycle (informational; excluded from equality of *operations*).
    pub cycle: u64,
}

impl DataCmd {
    /// Whether two commands are the same *operation* — same transaction,
    /// same location, same direction — regardless of when they issued.
    /// Differential runs compare operations, since absolute cycles shift
    /// with scheduling.
    #[must_use]
    pub fn same_operation(&self, other: &Self) -> bool {
        self.txn == other.txn && self.loc == other.loc && self.is_write == other.is_write
    }

    /// A sortable/groupable key for the operation (ignores the cycle).
    #[must_use]
    pub fn operation_key(&self) -> (u64, u32, u32, u32, u64, u32, bool) {
        (
            self.txn.0,
            self.loc.channel,
            self.loc.rank,
            self.loc.bank,
            self.loc.row,
            self.loc.column,
            self.is_write,
        )
    }
}

/// Extracts the data-command sequence from a trace, in issue order.
///
/// PRE/ACT preparation commands are dropped: the security contract
/// deliberately lets the Proactive Bank scheduler move those. Data commands
/// are always transaction-attributed by the controller; an unattributed one
/// is a controller bug, which [`check_txn_order`] reports.
#[must_use]
pub fn data_commands(trace: &[CommandEvent]) -> Vec<DataCmd> {
    trace
        .iter()
        .filter(|ev| ev.cmd.kind.carries_data())
        .filter_map(|ev| {
            ev.txn.map(|txn| DataCmd {
                txn,
                loc: ev.cmd.loc,
                is_write: ev.cmd.kind == CommandKind::Write,
                cycle: ev.cycle,
            })
        })
        .collect()
}

/// Incremental form of [`check_txn_order`], for streaming a long run's
/// trace through without retaining it.
#[derive(Debug, Clone, Default)]
pub struct TxnOrderChecker {
    highest: Option<TxnId>,
    violations: Vec<Violation>,
}

impl TxnOrderChecker {
    /// Creates a checker with no history.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one trace event (non-data commands are ignored).
    pub fn observe(&mut self, ev: &CommandEvent) {
        if !ev.cmd.kind.carries_data() {
            return;
        }
        match ev.txn {
            None => self.violations.push(Violation::new(
                ev.cycle,
                Rule::TxnOrder,
                format!("{} carries data but has no transaction attribution", ev.cmd),
            )),
            Some(txn) => {
                if let Some(h) = self.highest {
                    if txn < h {
                        self.violations.push(Violation::new(
                            ev.cycle,
                            Rule::TxnOrder,
                            format!(
                                "{} of txn {} issued after data traffic of txn {}",
                                ev.cmd, txn.0, h.0
                            ),
                        ));
                    }
                }
                self.highest = Some(self.highest.map_or(txn, |h| h.max(txn)));
            }
        }
    }

    /// Violations found so far.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Takes the accumulated violations, keeping the high-water mark.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Whether no violation has been found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks the transaction-order security contract on a trace: every data
/// command must be attributed to a transaction, and the attributed
/// transaction ids must be non-decreasing in issue order — all of
/// transaction *t*'s data traffic finishes before transaction *t+1*'s
/// starts, exactly as under the baseline transaction-based scheduler.
#[must_use]
pub fn check_txn_order(trace: &[CommandEvent]) -> Vec<Violation> {
    let mut checker = TxnOrderChecker::new();
    for ev in trace {
        checker.observe(ev);
    }
    checker.take_violations()
}

/// Groups a data-command sequence by transaction, ordered by transaction
/// id. Within each group the commands keep their issue order.
#[must_use]
pub fn grouped_by_txn(cmds: &[DataCmd]) -> Vec<(TxnId, Vec<DataCmd>)> {
    let mut groups: std::collections::BTreeMap<TxnId, Vec<DataCmd>> =
        std::collections::BTreeMap::new();
    for &c in cmds {
        groups.entry(c.txn).or_default().push(c);
    }
    groups.into_iter().collect()
}

/// Finds the first position at which two data-command sequences stop being
/// the same operation stream (cycles are ignored; see
/// [`DataCmd::same_operation`]). Returns `None` when the sequences agree,
/// otherwise the diverging index and each side's command there (`None` for
/// a side that ran out).
#[must_use]
pub fn first_divergence(
    a: &[DataCmd],
    b: &[DataCmd],
) -> Option<(usize, Option<DataCmd>, Option<DataCmd>)> {
    let n = a.len().max(b.len());
    for i in 0..n {
        match (a.get(i), b.get(i)) {
            (Some(x), Some(y)) if x.same_operation(y) => {}
            (ga, gb) => return Some((i, ga.copied(), gb.copied())),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::DramCommand;

    fn loc(bank: u32, row: u64, column: u32) -> DramLocation {
        DramLocation {
            channel: 0,
            rank: 0,
            bank,
            row,
            column,
        }
    }

    fn ev(cycle: u64, cmd: DramCommand, txn: Option<u64>) -> CommandEvent {
        CommandEvent {
            cycle,
            cmd,
            txn: txn.map(TxnId),
        }
    }

    #[test]
    fn data_commands_drops_prep_and_keeps_order() {
        let trace = vec![
            ev(0, DramCommand::activate(loc(0, 1, 0)), Some(0)),
            ev(3, DramCommand::read(loc(0, 1, 0)), Some(0)),
            ev(4, DramCommand::precharge(loc(1, 2, 0)), None),
            ev(6, DramCommand::write(loc(0, 1, 1)), Some(1)),
        ];
        let data = data_commands(&trace);
        assert_eq!(data.len(), 2);
        assert!(!data[0].is_write);
        assert_eq!(data[0].txn, TxnId(0));
        assert!(data[1].is_write);
        assert_eq!(data[1].cycle, 6);
    }

    #[test]
    fn txn_order_accepts_monotone_and_rejects_interleaved() {
        let ok = vec![
            ev(0, DramCommand::read(loc(0, 1, 0)), Some(0)),
            ev(2, DramCommand::read(loc(1, 1, 0)), Some(0)),
            ev(4, DramCommand::write(loc(0, 1, 1)), Some(1)),
        ];
        assert!(check_txn_order(&ok).is_empty());

        let bad = vec![
            ev(0, DramCommand::read(loc(0, 1, 0)), Some(1)),
            ev(2, DramCommand::read(loc(1, 1, 0)), Some(0)), // regresses
        ];
        let v = check_txn_order(&bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::TxnOrder);

        let unattributed = vec![ev(0, DramCommand::read(loc(0, 1, 0)), None)];
        assert_eq!(check_txn_order(&unattributed).len(), 1);
    }

    #[test]
    fn prep_commands_may_interleave_across_txns() {
        // The PB scheduler's whole point: ACT/PRE of a later transaction
        // may issue early. The contract must not flag that.
        let trace = vec![
            ev(0, DramCommand::read(loc(0, 1, 0)), Some(0)),
            ev(1, DramCommand::activate(loc(1, 5, 0)), Some(1)), // early prep
            ev(2, DramCommand::read(loc(0, 1, 1)), Some(0)),
            ev(5, DramCommand::read(loc(1, 5, 0)), Some(1)),
        ];
        assert!(check_txn_order(&trace).is_empty());
    }

    #[test]
    fn grouping_and_divergence() {
        let a = data_commands(&[
            ev(0, DramCommand::read(loc(0, 1, 0)), Some(0)),
            ev(2, DramCommand::read(loc(1, 2, 0)), Some(0)),
            ev(4, DramCommand::write(loc(0, 1, 1)), Some(1)),
        ]);
        let groups = grouped_by_txn(&a);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].1.len(), 2);

        // Same operations at different cycles: no divergence.
        let mut b = a.clone();
        for c in &mut b {
            c.cycle += 17;
        }
        assert!(first_divergence(&a, &b).is_none());

        // Flip a direction: diverges at index 2.
        b[2].is_write = false;
        let (i, ga, gb) = first_divergence(&a, &b).unwrap();
        assert_eq!(i, 2);
        assert!(ga.unwrap().is_write);
        assert!(!gb.unwrap().is_write);

        // Truncation diverges at the missing index.
        let (i, _, gb) = first_divergence(&a, &a[..2]).unwrap();
        assert_eq!(i, 2);
        assert!(gb.is_none());
    }
}
