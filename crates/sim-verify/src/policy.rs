//! Policy-conformance auditing over the command-event stream.
//!
//! The scheduler-policy lab in `mem-sched` runs five command-scheduling
//! policies through the same controller. Every policy except the
//! explicitly insecure unconstrained ablation promises the same observable
//! contract: the **transaction-ordered data-command sequence** — the
//! multiset of RD/WR operations per transaction, with transactions in
//! non-decreasing id order — is exactly the baseline's. Policies may move
//! PRE/ACT preparation freely and may reorder data commands *within* one
//! transaction (read-priority does), but never across transactions.
//!
//! [`PolicyAuditor`] checks that contract from the outside. It delegates
//! cross-transaction ordering to the [`TxnOrderChecker`] oracle and folds
//! every data command into a **canonical digest**: per-transaction groups,
//! each sorted by [`DataCmd::operation_key`] before hashing, so two runs
//! that differ only in intra-transaction issue order (or in preparation
//! traffic) produce the same digest. Two policies are observably
//! equivalent iff their auditors report zero violations and equal digests.
//!
//! [`DataCmd::operation_key`]: crate::oracle::DataCmd::operation_key

use dram_sim::CommandKind;
use mem_sched::{CommandEvent, TxnId};

use crate::oracle::TxnOrderChecker;
use crate::violation::Violation;

/// SplitMix64 finalizer: the bijective mixer the digest chain is built on.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes the on-bus-observable identity of one data command (transaction,
/// location, direction — never the cycle).
fn operation_hash(txn: TxnId, ev: &CommandEvent) -> u64 {
    let loc = ev.cmd.loc;
    let mut h = mix64(txn.0 ^ 0x0BB0_5E55_0D1E_5EED);
    h = mix64(h ^ u64::from(loc.channel));
    h = mix64(h ^ u64::from(loc.rank));
    h = mix64(h ^ u64::from(loc.bank));
    h = mix64(h ^ loc.row);
    h = mix64(h ^ u64::from(loc.column));
    mix64(h ^ u64::from(ev.cmd.kind == CommandKind::Write))
}

/// Streaming auditor for one scheduling policy's observable contract:
/// transaction-ordered data commands plus the canonical (intra-transaction
/// order-insensitive) digest of the data-command sequence.
#[derive(Debug, Clone)]
pub struct PolicyAuditor {
    policy: String,
    order: TxnOrderChecker,
    digest: u64,
    pending_txn: Option<TxnId>,
    pending: Vec<u64>,
    data_commands: u64,
}

impl PolicyAuditor {
    /// An auditor with no history, labelled with the policy under audit.
    #[must_use]
    pub fn new(policy: &str) -> Self {
        Self {
            policy: policy.to_string(),
            order: TxnOrderChecker::new(),
            digest: 0x0BAC_C0DE_5EED_F00D,
            pending_txn: None,
            pending: Vec::new(),
            data_commands: 0,
        }
    }

    /// Name of the policy under audit.
    #[must_use]
    pub fn policy_name(&self) -> &str {
        &self.policy
    }

    /// Observes one trace event. PRE/ACT preparation is ignored — the
    /// contract deliberately lets policies move it.
    pub fn observe(&mut self, ev: &CommandEvent) {
        if !ev.cmd.kind.carries_data() {
            return;
        }
        self.order.observe(ev);
        let Some(txn) = ev.txn else {
            return; // unattributed data: the order checker flagged it
        };
        self.data_commands += 1;
        if self.pending_txn != Some(txn) {
            let group = std::mem::take(&mut self.pending);
            self.digest = Self::fold_group(self.digest, self.pending_txn, group);
            self.pending_txn = Some(txn);
        }
        self.pending.push(operation_hash(txn, ev));
    }

    /// Folds one transaction's sorted operation hashes into the chain. A
    /// transaction whose data traffic is split by another's (the ordering
    /// violation) forms two groups and therefore a different digest.
    fn fold_group(mut digest: u64, txn: Option<TxnId>, mut group: Vec<u64>) -> u64 {
        let Some(txn) = txn else {
            return digest;
        };
        group.sort_unstable();
        digest = mix64(digest ^ txn.0.rotate_left(17));
        for h in group {
            digest = mix64(digest.rotate_left(1) ^ h);
        }
        digest
    }

    /// The canonical digest over everything observed so far: equal across
    /// runs iff the transaction-ordered data-command multisets are equal.
    #[must_use]
    pub fn canonical_digest(&self) -> u64 {
        Self::fold_group(self.digest, self.pending_txn, self.pending.clone())
    }

    /// Data (RD/WR) commands observed.
    #[must_use]
    pub fn data_commands(&self) -> u64 {
        self.data_commands
    }

    /// Whether no ordering violation has been found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.order.is_clean()
    }

    /// Takes the accumulated ordering violations, keeping all digest state.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        self.order.take_violations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{DramCommand, DramLocation};

    fn loc(bank: u32, row: u64, column: u32) -> DramLocation {
        DramLocation {
            channel: 0,
            rank: 0,
            bank,
            row,
            column,
        }
    }

    fn rd(cycle: u64, l: DramLocation, txn: u64) -> CommandEvent {
        CommandEvent {
            cycle,
            cmd: DramCommand::read(l),
            txn: Some(TxnId(txn)),
        }
    }

    fn wr(cycle: u64, l: DramLocation, txn: u64) -> CommandEvent {
        CommandEvent {
            cycle,
            cmd: DramCommand::write(l),
            txn: Some(TxnId(txn)),
        }
    }

    #[test]
    fn intra_txn_reorder_keeps_the_digest() {
        let mut a = PolicyAuditor::new("proactive-bank");
        let mut b = PolicyAuditor::new("read-over-write");
        // Same operations; b issues txn 0's read before its write.
        for ev in [
            wr(0, loc(0, 1, 0), 0),
            rd(2, loc(1, 2, 0), 0),
            rd(5, loc(0, 3, 0), 1),
        ] {
            a.observe(&ev);
        }
        for ev in [
            rd(0, loc(1, 2, 0), 0),
            wr(3, loc(0, 1, 0), 0),
            rd(9, loc(0, 3, 0), 1),
        ] {
            b.observe(&ev);
        }
        assert!(a.is_clean() && b.is_clean());
        assert_eq!(a.canonical_digest(), b.canonical_digest());
        assert_eq!(a.data_commands(), 3);
    }

    #[test]
    fn cross_txn_reorder_is_flagged_and_changes_the_digest() {
        let mut ok = PolicyAuditor::new("fr-fcfs");
        let mut bad = PolicyAuditor::new("unconstrained");
        for ev in [rd(0, loc(0, 1, 0), 0), rd(2, loc(1, 2, 0), 1)] {
            ok.observe(&ev);
        }
        // Same operations with txn 1's data overtaking txn 0's.
        for ev in [rd(0, loc(1, 2, 0), 1), rd(2, loc(0, 1, 0), 0)] {
            bad.observe(&ev);
        }
        assert!(ok.take_violations().is_empty());
        let v = bad.take_violations();
        assert_eq!(v.len(), 1);
        assert_ne!(ok.canonical_digest(), bad.canonical_digest());
    }

    #[test]
    fn prep_traffic_and_operation_changes() {
        let mut a = PolicyAuditor::new("pb");
        a.observe(&rd(0, loc(0, 1, 0), 0));
        let before = a.canonical_digest();
        // Early prep for a later transaction: invisible to the contract.
        a.observe(&CommandEvent {
            cycle: 1,
            cmd: DramCommand::activate(loc(3, 9, 0)),
            txn: Some(TxnId(4)),
        });
        assert_eq!(a.canonical_digest(), before);
        // A different operation is visible.
        a.observe(&rd(2, loc(0, 1, 1), 0));
        assert_ne!(a.canonical_digest(), before);
        // The digest is a pure observer: reading it twice agrees.
        assert_eq!(a.canonical_digest(), a.canonical_digest());
    }
}
