//! Serving-layer auditor: request-lifecycle and submission-envelope
//! invariants for a multi-tenant ORAM front-end.
//!
//! The service layer above the pipeline makes three promises that are easy
//! to break silently under overload, so — like every other checker in this
//! crate — they are re-validated from the outside, using only the event
//! stream the service emits:
//!
//! * **queue bounds** — a tenant's queue depth never exceeds its
//!   configured capacity (admission must shed, not buffer);
//! * **exactly-once resolution** — every arriving request ends in exactly
//!   one terminal state (completed, timed out, or rejected); no request is
//!   resolved twice (the "deadline-expired request retires twice" bug) or
//!   lost (never resolved by drain);
//! * **fixed-rate envelope** — under the Cloak-style fixed-rate policy,
//!   the number of slots submitted on a tick is a pure function of the
//!   policy (`batch` on every interval boundary, zero otherwise), never of
//!   the offered load. This is the timing-channel contract: an adversary
//!   watching *when* the service talks to the ORAM learns only the clock.
//!
//! The auditor is passive and deterministic; violations surface through
//! the same [`Violation`] records as the timing and protocol checkers.

use std::collections::HashMap;

use crate::violation::{Rule, Violation};

/// The submission policy the auditor holds the service to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditedPolicy {
    /// Work-conserving: submit whenever there is work and engine room. No
    /// envelope constraint (best-effort deliberately trades the timing
    /// channel for throughput).
    BestEffort,
    /// Fixed-rate with padding: every `interval` cycles, submit exactly
    /// `batch` slots — real requests or cover accesses — and nothing in
    /// between.
    FixedRate {
        /// Cycles between submission ticks.
        interval: u64,
        /// Slots per submission tick.
        batch: u32,
    },
}

/// Terminal state of a service request, as reported to the auditor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The ORAM access retired and the tenant got its data.
    Completed,
    /// The deadline expired before completion.
    TimedOut,
    /// Admission shed the request (queue full, throttled, or shedding).
    Rejected,
}

impl RequestOutcome {
    fn label(self) -> &'static str {
        match self {
            Self::Completed => "completed",
            Self::TimedOut => "timed-out",
            Self::Rejected => "rejected",
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum ReqState {
    Pending,
    Resolved(RequestOutcome),
}

/// Passive auditor for the service invariants above. Feed it the service's
/// event stream (arrivals, queue-depth observations, per-slot dispatches,
/// tick seals, resolutions), then [`ServiceAuditor::finish`] at drain.
#[derive(Debug)]
pub struct ServiceAuditor {
    policy: AuditedPolicy,
    /// Per-tenant queue capacity, indexed by tenant id.
    queue_caps: Vec<usize>,
    requests: HashMap<u64, ReqState>,
    tick_slots: u32,
    violations: Vec<Violation>,
    finished: bool,
}

impl ServiceAuditor {
    /// Creates the auditor for a policy and the per-tenant queue
    /// capacities (indexed by tenant id).
    #[must_use]
    pub fn new(policy: AuditedPolicy, queue_caps: Vec<usize>) -> Self {
        Self {
            policy,
            queue_caps,
            requests: HashMap::new(),
            tick_slots: 0,
            violations: Vec::new(),
            finished: false,
        }
    }

    /// Records a request arriving at the front door. `request` must be
    /// unique across the run (the service's arrival counter).
    pub fn observe_arrival(&mut self, cycle: u64, request: u64) {
        if self.requests.insert(request, ReqState::Pending).is_some() {
            self.violations.push(Violation::new(
                cycle,
                Rule::ServiceResolution,
                format!("request {request} arrived twice"),
            ));
        }
    }

    /// Checks a tenant's observed queue depth against its capacity.
    pub fn observe_queue_depth(&mut self, cycle: u64, tenant: usize, depth: usize) {
        let cap = self.queue_caps.get(tenant).copied().unwrap_or(0);
        if depth > cap {
            self.violations.push(Violation::new(
                cycle,
                Rule::ServiceQueueBound,
                format!("tenant {tenant} queue depth {depth} exceeds capacity {cap}"),
            ));
        }
    }

    /// Records one submitted slot: a real request (`Some`) or a cover
    /// access (`None`). Dispatching an unknown or already-resolved request
    /// is a resolution violation (the engine would retire it into nowhere
    /// — or twice).
    pub fn observe_dispatch(&mut self, cycle: u64, request: Option<u64>) {
        self.tick_slots += 1;
        if let Some(id) = request {
            match self.requests.get(&id) {
                Some(ReqState::Pending) => {}
                Some(ReqState::Resolved(o)) => self.violations.push(Violation::new(
                    cycle,
                    Rule::ServiceResolution,
                    format!("request {id} dispatched after resolving {}", o.label()),
                )),
                None => self.violations.push(Violation::new(
                    cycle,
                    Rule::ServiceResolution,
                    format!("request {id} dispatched but never arrived"),
                )),
            }
        }
    }

    /// Seals one cycle's submission window: checks the slot count emitted
    /// since the previous seal against the policy envelope and resets the
    /// counter. Call once per cycle while the service is in its submitting
    /// phase (arrival horizon plus drain-with-cadence).
    pub fn seal_tick(&mut self, cycle: u64) {
        let slots = std::mem::take(&mut self.tick_slots);
        if let AuditedPolicy::FixedRate { interval, batch } = self.policy {
            let expected = if interval > 0 && cycle.is_multiple_of(interval) {
                batch
            } else {
                0
            };
            if slots != expected {
                self.violations.push(Violation::new(
                    cycle,
                    Rule::ServiceEnvelope,
                    format!("fixed-rate tick submitted {slots} slots, expected {expected}"),
                ));
            }
        }
    }

    /// Records a request reaching a terminal state. A second resolution of
    /// the same request is the exactly-once violation.
    pub fn observe_resolution(&mut self, cycle: u64, request: u64, outcome: RequestOutcome) {
        match self.requests.get_mut(&request) {
            Some(state @ ReqState::Pending) => *state = ReqState::Resolved(outcome),
            Some(ReqState::Resolved(first)) => self.violations.push(Violation::new(
                cycle,
                Rule::ServiceResolution,
                format!(
                    "request {request} resolved {} after already resolving {}",
                    outcome.label(),
                    first.label()
                ),
            )),
            None => self.violations.push(Violation::new(
                cycle,
                Rule::ServiceResolution,
                format!(
                    "request {request} resolved {} but never arrived",
                    outcome.label()
                ),
            )),
        }
    }

    /// Closes the run: every arrived request must have resolved. Idempotent.
    pub fn finish(&mut self, cycle: u64) {
        if self.finished {
            return;
        }
        self.finished = true;
        let mut unresolved: Vec<u64> = self
            .requests
            .iter()
            .filter_map(|(id, s)| matches!(s, ReqState::Pending).then_some(*id))
            .collect();
        unresolved.sort_unstable();
        for id in unresolved {
            self.violations.push(Violation::new(
                cycle,
                Rule::ServiceResolution,
                format!("request {id} never resolved by drain"),
            ));
        }
    }

    /// Requests observed so far (arrivals).
    #[must_use]
    pub fn requests_seen(&self) -> usize {
        self.requests.len()
    }

    /// All violations found so far.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed(interval: u64, batch: u32) -> ServiceAuditor {
        ServiceAuditor::new(AuditedPolicy::FixedRate { interval, batch }, vec![4, 4])
    }

    #[test]
    fn clean_fixed_rate_run_has_no_violations() {
        let mut a = fixed(4, 2);
        a.observe_arrival(0, 1);
        a.observe_arrival(0, 2);
        for cycle in 0..8u64 {
            if cycle % 4 == 0 {
                a.observe_dispatch(cycle, (cycle == 0).then_some(1));
                a.observe_dispatch(cycle, (cycle == 0).then_some(2));
            }
            a.seal_tick(cycle);
        }
        a.observe_resolution(9, 1, RequestOutcome::Completed);
        a.observe_resolution(9, 2, RequestOutcome::TimedOut);
        a.finish(10);
        assert!(a.violations().is_empty(), "{:?}", a.violations());
        assert_eq!(a.requests_seen(), 2);
    }

    #[test]
    fn envelope_breaks_are_flagged_both_ways() {
        let mut a = fixed(4, 2);
        a.observe_dispatch(1, None); // off-boundary slot
        a.seal_tick(1);
        a.seal_tick(4); // boundary with zero slots
        let rules: Vec<_> = a.violations().iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec![Rule::ServiceEnvelope, Rule::ServiceEnvelope]);
    }

    #[test]
    fn best_effort_has_no_envelope() {
        let mut a = ServiceAuditor::new(AuditedPolicy::BestEffort, vec![4]);
        a.observe_dispatch(1, None);
        a.seal_tick(1);
        a.seal_tick(2);
        assert!(a.violations().is_empty());
    }

    #[test]
    fn queue_overflow_is_flagged() {
        let mut a = ServiceAuditor::new(AuditedPolicy::BestEffort, vec![4, 2]);
        a.observe_queue_depth(5, 0, 4); // at capacity: fine
        a.observe_queue_depth(5, 1, 3); // over
        assert_eq!(a.violations().len(), 1);
        assert_eq!(a.violations()[0].rule, Rule::ServiceQueueBound);
    }

    #[test]
    fn double_and_missing_resolutions_are_flagged() {
        let mut a = ServiceAuditor::new(AuditedPolicy::BestEffort, vec![4]);
        a.observe_arrival(0, 1);
        a.observe_arrival(0, 2);
        a.observe_resolution(3, 1, RequestOutcome::TimedOut);
        a.observe_resolution(4, 1, RequestOutcome::Completed); // the classic bug
        a.observe_resolution(4, 9, RequestOutcome::Completed); // never arrived
        a.finish(10); // request 2 still pending
        let rules: Vec<_> = a.violations().iter().map(|v| v.rule).collect();
        assert_eq!(
            rules,
            vec![
                Rule::ServiceResolution,
                Rule::ServiceResolution,
                Rule::ServiceResolution
            ]
        );
        assert!(a.violations()[0]
            .message
            .contains("already resolving timed-out"));
        assert!(a.violations()[2].message.contains("never resolved"));
    }

    #[test]
    fn dispatch_after_resolution_is_flagged() {
        let mut a = ServiceAuditor::new(AuditedPolicy::BestEffort, vec![4]);
        a.observe_arrival(0, 7);
        a.observe_resolution(2, 7, RequestOutcome::TimedOut);
        a.observe_dispatch(3, Some(7));
        a.seal_tick(3);
        assert_eq!(a.violations().len(), 1);
        assert_eq!(a.violations()[0].rule, Rule::ServiceResolution);
    }
}
