//! The JEDEC shadow timing checker.
//!
//! [`ShadowTimingChecker`] validates a recorded command trace against the
//! DDR timing rules *independently* of `dram-sim`: it keeps its own
//! event-history state (last ACT/PRE/column per bank, rank activation
//! history, bus occupancy) and checks each command against the named JEDEC
//! constraint directly, attributing every failure to a specific [`Rule`].
//!
//! Refresch is not visible in the trace (the module performs it internally),
//! so the checker synthesizes it from first principles: with the controller
//! ticking the module every cycle, each rank refreshes exactly when its
//! tREFI deadline passes, closing all rows and blocking the rank for tRFC.
//! The checker therefore assumes the trace was produced by a contiguously
//! ticked controller (cycle 0, 1, 2, ...), which is how both the
//! integrated simulation and the scheduler tests drive it.

use dram_sim::geometry::DramGeometry;
use dram_sim::timing::TimingParams;
use dram_sim::{CommandKind, DramCommand};

use crate::violation::{Rule, Violation};

/// Event-history state of one shadow bank.
#[derive(Debug, Clone, Default)]
struct ShadowBank {
    open_row: Option<u64>,
    /// Cycle of the most recent ACT.
    last_act: Option<u64>,
    /// Cycle of the most recent PRE.
    last_pre: Option<u64>,
    /// Cycle of the most recent RD (tRTP persists across row epochs).
    last_rd: Option<u64>,
    /// Cycle of the most recent column command *within the current row
    /// epoch* (same-bank tCCD; a new ACT starts a fresh epoch).
    last_col: Option<u64>,
    /// End of the most recent write burst (tWR persists across epochs).
    last_wr_end: Option<u64>,
}

/// Event-history state of one shadow rank.
#[derive(Debug, Clone)]
struct ShadowRank {
    banks: Vec<ShadowBank>,
    /// Cycle of the rank's most recent ACT (tRRD_S).
    last_act: Option<u64>,
    /// Cycle of the most recent ACT per bank group (tRRD_L).
    group_last_act: Vec<Option<u64>>,
    /// Cycle of the most recent column command per bank group (tCCD_L).
    group_last_col: Vec<Option<u64>>,
    /// Issue cycles of recent ACTs for the tFAW rolling window.
    recent_acts: Vec<u64>,
    /// Earliest cycle a RD may issue (end of write burst + tWTR).
    rd_ready: u64,
    /// Cycle the rank's current refresh completes (0 when none pending).
    refresh_done: u64,
    /// Cycle the next refresh fires.
    next_refresh: u64,
}

impl ShadowRank {
    fn new(banks: u32, groups: u32, t: &TimingParams) -> Self {
        Self {
            banks: vec![ShadowBank::default(); banks as usize],
            last_act: None,
            group_last_act: vec![None; groups as usize],
            group_last_col: vec![None; groups as usize],
            recent_acts: Vec::with_capacity(8),
            rd_ready: 0,
            refresh_done: 0,
            next_refresh: t.t_refi,
        }
    }
}

/// Bus state of one shadow channel.
#[derive(Debug, Clone, Default)]
struct ShadowChannel {
    /// Cycle of the last command on this channel's command bus.
    last_cmd_cycle: Option<u64>,
    /// End of the current data-bus burst.
    data_busy_until: u64,
    /// Direction of the last burst (`true` = write), `None` while idle.
    last_dir: Option<bool>,
}

/// An independent re-derivation of the JEDEC timing rules, applied to a
/// command trace.
///
/// # Examples
///
/// ```
/// use dram_sim::geometry::DramGeometry;
/// use dram_sim::timing::TimingParams;
/// use dram_sim::{DramCommand, DramLocation};
/// use sim_verify::ShadowTimingChecker;
///
/// let mut checker =
///     ShadowTimingChecker::new(DramGeometry::test_small(), TimingParams::test_fast());
/// let loc = DramLocation { channel: 0, rank: 0, bank: 0, row: 3, column: 0 };
/// checker.observe(0, DramCommand::activate(loc));
/// checker.observe(1, DramCommand::read(loc)); // violates tRCD
/// assert!(!checker.is_clean());
/// ```
#[derive(Debug, Clone)]
pub struct ShadowTimingChecker {
    geometry: DramGeometry,
    t: TimingParams,
    channels: Vec<ShadowChannel>,
    ranks: Vec<Vec<ShadowRank>>,
    violations: Vec<Violation>,
    commands: u64,
}

impl ShadowTimingChecker {
    /// Creates a checker for a module of the given geometry and timing.
    #[must_use]
    pub fn new(geometry: DramGeometry, t: TimingParams) -> Self {
        let channels = (0..geometry.channels)
            .map(|_| ShadowChannel::default())
            .collect();
        let ranks = (0..geometry.channels)
            .map(|_| {
                (0..geometry.ranks_per_channel)
                    .map(|_| ShadowRank::new(geometry.banks_per_rank, geometry.bank_groups, &t))
                    .collect()
            })
            .collect();
        Self {
            geometry,
            t,
            channels,
            ranks,
            violations: Vec::new(),
            commands: 0,
        }
    }

    /// Violations found so far.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Takes the accumulated violations, leaving the checker's timing state
    /// intact (for incremental use across a long run).
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Whether no violation has been found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Commands observed so far.
    #[must_use]
    pub fn commands_checked(&self) -> u64 {
        self.commands
    }

    /// Checks a whole trace; returns the violations found.
    pub fn check_trace(&mut self, trace: &[(u64, DramCommand)]) -> Vec<Violation> {
        let before = self.violations.len();
        for &(cycle, cmd) in trace {
            self.observe(cycle, cmd);
        }
        self.violations[before..].to_vec()
    }

    fn violate(&mut self, cycle: u64, rule: Rule, message: String) {
        self.violations.push(Violation::new(cycle, rule, message));
    }

    /// Fires every refresh whose tREFI deadline has passed by `cycle` on
    /// one rank, closing all its rows and blocking it for tRFC.
    fn advance_refresh(&mut self, ch: usize, rk: usize, cycle: u64) {
        if self.t.t_refi == 0 {
            return;
        }
        let rank = &mut self.ranks[ch][rk];
        while rank.next_refresh <= cycle {
            let at = rank.next_refresh;
            for b in &mut rank.banks {
                b.open_row = None;
            }
            rank.refresh_done = at + self.t.t_rfc;
            rank.next_refresh += self.t.t_refi;
        }
    }

    /// Observes one command at its issue cycle, recording every violated
    /// rule and then folding the command into the shadow state.
    pub fn observe(&mut self, cycle: u64, cmd: DramCommand) {
        self.commands += 1;
        let g = &self.geometry;
        let loc = cmd.loc;
        if loc.channel >= g.channels
            || loc.rank >= g.ranks_per_channel
            || loc.bank >= g.banks_per_rank
            || loc.row >= g.rows_per_bank
            || loc.column >= g.columns_per_row
        {
            self.violate(cycle, Rule::OutOfRange, format!("{cmd} outside geometry"));
            return;
        }
        let ch = loc.channel as usize;
        let rk = loc.rank as usize;
        let bk = loc.bank as usize;
        let group = (loc.bank % g.bank_groups) as usize;
        // DDR3 (one group) has no long timings; DDR4 groups do.
        let (rrd_l, ccd_l) = if g.bank_groups == 1 {
            (self.t.t_rrd, self.t.t_ccd)
        } else {
            (self.t.t_rrd_l, self.t.t_ccd_l)
        };

        self.advance_refresh(ch, rk, cycle);

        // Command bus: one command per channel per cycle.
        if self.channels[ch].last_cmd_cycle == Some(cycle) {
            self.violate(
                cycle,
                Rule::CmdBus,
                format!("{cmd} shares the command bus cycle with another command"),
            );
        }
        self.channels[ch].last_cmd_cycle = Some(cycle);

        // Refresh blocks every command class on the rank.
        let refresh_done = self.ranks[ch][rk].refresh_done;
        if cycle < refresh_done {
            self.violate(
                cycle,
                Rule::Refresh,
                format!("{cmd} during refresh (busy until {refresh_done})"),
            );
        }

        let t = self.t.clone();
        match cmd.kind {
            CommandKind::Activate => {
                let rank = &self.ranks[ch][rk];
                let bank = &rank.banks[bk];
                let mut found: Vec<(Rule, String)> = Vec::new();
                if let Some(open) = bank.open_row {
                    found.push((Rule::BankState, format!("ACT while row {open} open")));
                }
                if let Some(a) = bank.last_act {
                    if cycle < a + t.t_rc {
                        found.push((Rule::Trc, format!("ACT {} after ACT", cycle - a)));
                    }
                }
                if let Some(p) = bank.last_pre {
                    if cycle < p + t.t_rp {
                        found.push((Rule::Trp, format!("ACT {} after PRE", cycle - p)));
                    }
                }
                if let Some(a) = rank.last_act {
                    if cycle < a + t.t_rrd {
                        found.push((Rule::Trrd, format!("ACT {} after rank ACT", cycle - a)));
                    }
                }
                if let Some(a) = rank.group_last_act[group] {
                    if cycle < a + rrd_l {
                        found.push((Rule::Trrd, format!("ACT {} after group ACT", cycle - a)));
                    }
                }
                if rank.recent_acts.len() >= 4 {
                    let oldest = rank.recent_acts[rank.recent_acts.len() - 4];
                    if cycle < oldest + t.t_faw {
                        found.push((
                            Rule::Tfaw,
                            format!("5th ACT {} into the tFAW window", cycle - oldest),
                        ));
                    }
                }
                for (rule, msg) in found {
                    self.violate(cycle, rule, format!("{cmd}: {msg}"));
                }
                let rank = &mut self.ranks[ch][rk];
                let bank = &mut rank.banks[bk];
                bank.open_row = Some(loc.row);
                bank.last_act = Some(cycle);
                bank.last_col = None;
                rank.last_act = Some(cycle);
                rank.group_last_act[group] = Some(cycle);
                rank.recent_acts.push(cycle);
                if rank.recent_acts.len() > 8 {
                    rank.recent_acts.drain(..4);
                }
            }
            CommandKind::Precharge => {
                let bank = &self.ranks[ch][rk].banks[bk];
                let mut found: Vec<(Rule, String)> = Vec::new();
                if bank.open_row.is_none() {
                    found.push((Rule::BankState, "PRE on a closed bank".to_string()));
                }
                if let Some(a) = bank.last_act {
                    if cycle < a + t.t_ras {
                        found.push((Rule::Tras, format!("PRE {} after ACT", cycle - a)));
                    }
                }
                if let Some(r) = bank.last_rd {
                    if cycle < r + t.t_rtp {
                        found.push((Rule::Trtp, format!("PRE {} after RD", cycle - r)));
                    }
                }
                if let Some(w) = bank.last_wr_end {
                    if cycle < w + t.t_wr {
                        found.push((Rule::Twr, format!("PRE {} after write burst", cycle - w)));
                    }
                }
                for (rule, msg) in found {
                    self.violate(cycle, rule, format!("{cmd}: {msg}"));
                }
                let bank = &mut self.ranks[ch][rk].banks[bk];
                bank.open_row = None;
                bank.last_pre = Some(cycle);
            }
            CommandKind::Read | CommandKind::Write => {
                let is_write = cmd.kind == CommandKind::Write;
                let rank = &self.ranks[ch][rk];
                let bank = &rank.banks[bk];
                let mut found: Vec<(Rule, String)> = Vec::new();
                match bank.open_row {
                    None => found.push((Rule::BankState, "column command on a closed bank".into())),
                    Some(open) if open != loc.row => found.push((
                        Rule::BankState,
                        format!("column command to row {} but row {open} open", loc.row),
                    )),
                    Some(_) => {}
                }
                if let Some(a) = bank.last_act {
                    if cycle < a + t.t_rcd {
                        found.push((Rule::Trcd, format!("column {} after ACT", cycle - a)));
                    }
                }
                if let Some(c) = bank.last_col {
                    if cycle < c + t.t_ccd {
                        found.push((
                            Rule::Tccd,
                            format!("column {} after bank column", cycle - c),
                        ));
                    }
                }
                if let Some(c) = rank.group_last_col[group] {
                    if cycle < c + ccd_l {
                        found.push((
                            Rule::Tccd,
                            format!("column {} after group column", cycle - c),
                        ));
                    }
                }
                if !is_write && cycle < rank.rd_ready {
                    found.push((
                        Rule::Twtr,
                        format!(
                            "RD before write-to-read turnaround (ready {})",
                            rank.rd_ready
                        ),
                    ));
                }
                // Data bus: the burst window must not overlap the previous
                // burst, plus a turnaround bubble on direction change.
                let data_start = cycle + if is_write { t.cwl } else { t.cl };
                let chan = &self.channels[ch];
                let mut earliest = chan.data_busy_until;
                if let Some(dir) = chan.last_dir {
                    if dir != is_write {
                        earliest += t.t_turnaround;
                    }
                }
                if data_start < earliest {
                    found.push((
                        Rule::DataBus,
                        format!("burst at {data_start} overlaps bus busy until {earliest}"),
                    ));
                }
                for (rule, msg) in found {
                    self.violate(cycle, rule, format!("{cmd}: {msg}"));
                }
                let rank = &mut self.ranks[ch][rk];
                let bank = &mut rank.banks[bk];
                bank.last_col = Some(cycle);
                if is_write {
                    let data_end = data_start + t.t_burst;
                    bank.last_wr_end = Some(data_end);
                    rank.rd_ready = rank.rd_ready.max(data_end + t.t_wtr);
                } else {
                    bank.last_rd = Some(cycle);
                }
                rank.group_last_col[group] = Some(cycle);
                let chan = &mut self.channels[ch];
                chan.data_busy_until = data_start + t.t_burst;
                chan.last_dir = Some(is_write);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::DramLocation;

    fn checker() -> ShadowTimingChecker {
        ShadowTimingChecker::new(DramGeometry::test_small(), TimingParams::test_fast())
    }

    fn loc(channel: u32, bank: u32, row: u64, column: u32) -> DramLocation {
        DramLocation {
            channel,
            rank: 0,
            bank,
            row,
            column,
        }
    }

    fn t() -> TimingParams {
        TimingParams::test_fast()
    }

    #[test]
    fn legal_open_read_precharge_sequence_is_clean() {
        let mut c = checker();
        let tp = t();
        let l = loc(0, 0, 3, 1);
        c.observe(0, DramCommand::activate(l));
        c.observe(tp.t_rcd, DramCommand::read(l));
        let pre_at = tp.t_ras.max(tp.t_rcd + tp.t_rtp);
        c.observe(pre_at, DramCommand::precharge(l));
        assert!(c.is_clean(), "{:?}", c.violations());
        assert_eq!(c.commands_checked(), 3);
    }

    #[test]
    fn trcd_violation_detected() {
        let mut c = checker();
        let l = loc(0, 0, 3, 1);
        c.observe(0, DramCommand::activate(l));
        c.observe(t().t_rcd - 1, DramCommand::read(l));
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].rule, Rule::Trcd);
    }

    #[test]
    fn act_on_open_bank_detected() {
        let mut c = checker();
        let l = loc(0, 0, 3, 1);
        c.observe(0, DramCommand::activate(l));
        c.observe(100, DramCommand::activate(loc(0, 0, 4, 1)));
        assert!(c.violations().iter().any(|v| v.rule == Rule::BankState));
    }

    #[test]
    fn tras_and_trp_violations_detected() {
        let mut c = checker();
        let tp = t();
        let l = loc(0, 0, 3, 1);
        c.observe(0, DramCommand::activate(l));
        c.observe(tp.t_ras - 1, DramCommand::precharge(l)); // tRAS short
        c.observe(tp.t_ras, DramCommand::activate(l)); // tRP (and tRC) short
        let rules: Vec<Rule> = c.violations().iter().map(|v| v.rule).collect();
        assert!(rules.contains(&Rule::Tras), "{rules:?}");
        assert!(rules.contains(&Rule::Trp), "{rules:?}");
        assert!(rules.contains(&Rule::Trc), "{rules:?}");
    }

    #[test]
    fn cmd_bus_conflict_detected_and_channels_independent() {
        let mut c = checker();
        c.observe(0, DramCommand::activate(loc(0, 0, 1, 0)));
        c.observe(0, DramCommand::activate(loc(1, 0, 1, 0))); // other channel: fine
        assert!(c.is_clean(), "{:?}", c.violations());
        c.observe(5, DramCommand::precharge(loc(0, 0, 1, 0)));
        c.observe(5, DramCommand::precharge(loc(0, 1, 1, 0))); // same channel: bus clash
        assert!(c.violations().iter().any(|v| v.rule == Rule::CmdBus));
    }

    #[test]
    fn trrd_detected_across_banks() {
        let mut c = checker();
        let tp = t();
        c.observe(0, DramCommand::activate(loc(0, 0, 1, 0)));
        c.observe(tp.t_rrd - 1, DramCommand::activate(loc(0, 1, 1, 0)));
        // With a single bank group the rank-wide and group-local windows
        // coincide, so both report.
        assert!(!c.violations().is_empty());
        assert!(c.violations().iter().all(|v| v.rule == Rule::Trrd));
    }

    #[test]
    fn tfaw_detected_on_fifth_act() {
        let mut c = checker();
        let tp = t();
        // Four legal ACTs spaced by tRRD, then a fifth inside the window.
        for i in 0..4u64 {
            c.observe(i * tp.t_rrd, DramCommand::activate(loc(0, i as u32, 1, 0)));
        }
        assert!(c.is_clean(), "{:?}", c.violations());
        // Bank 0 needs closing first to dodge BankState; use cross-cycle PRE.
        let fifth_at = 3 * tp.t_rrd + tp.t_rrd; // == 4*t_rrd < t_faw
        assert!(fifth_at < tp.t_faw, "test premise");
        c.observe(fifth_at, DramCommand::activate(loc(0, 0, 2, 0)));
        let rules: Vec<Rule> = c.violations().iter().map(|v| v.rule).collect();
        assert!(rules.contains(&Rule::Tfaw), "{rules:?}");
    }

    #[test]
    fn twtr_detected() {
        let mut c = checker();
        let tp = t();
        let a = loc(0, 0, 1, 0);
        let b = loc(0, 1, 1, 0);
        c.observe(0, DramCommand::activate(a));
        c.observe(tp.t_rrd, DramCommand::activate(b));
        let wr_at = tp.t_rrd + tp.t_rcd;
        c.observe(wr_at, DramCommand::write(a));
        let wr_end = wr_at + tp.cwl + tp.t_burst;
        // RD on the other bank one cycle before the turnaround elapses.
        c.observe(wr_end + tp.t_wtr - 1, DramCommand::read(b));
        let rules: Vec<Rule> = c.violations().iter().map(|v| v.rule).collect();
        assert!(rules.contains(&Rule::Twtr), "{rules:?}");
    }

    #[test]
    fn data_bus_overlap_detected() {
        let mut c = checker();
        let tp = t();
        let a = loc(0, 0, 1, 0);
        let b = loc(0, 1, 1, 1);
        c.observe(0, DramCommand::activate(a));
        c.observe(tp.t_rrd, DramCommand::activate(b));
        let rd_at = tp.t_rrd + tp.t_rcd;
        c.observe(rd_at, DramCommand::read(a));
        // Second read one cycle later: bursts overlap on the shared bus
        // (tCCD would allow it only if tCCD < tBurst, so check both fired).
        c.observe(rd_at + 1, DramCommand::read(b));
        let rules: Vec<Rule> = c.violations().iter().map(|v| v.rule).collect();
        assert!(rules.contains(&Rule::DataBus), "{rules:?}");
    }

    #[test]
    fn refresh_window_blocks_commands() {
        let mut c = checker();
        let tp = t();
        let l = loc(0, 0, 1, 0);
        // A command right after the first tREFI deadline must be rejected
        // for tRFC cycles.
        c.observe(tp.t_refi + 1, DramCommand::activate(l));
        let rules: Vec<Rule> = c.violations().iter().map(|v| v.rule).collect();
        assert!(rules.contains(&Rule::Refresh), "{rules:?}");
        // And the refresh closed the row it never had: after tRFC, clean.
        let mut c2 = checker();
        c2.observe(tp.t_refi + tp.t_rfc, DramCommand::activate(l));
        assert!(c2.is_clean(), "{:?}", c2.violations());
    }

    #[test]
    fn out_of_range_detected() {
        let mut c = checker();
        c.observe(0, DramCommand::activate(loc(7, 0, 1, 0)));
        assert_eq!(c.violations()[0].rule, Rule::OutOfRange);
    }

    #[test]
    fn checker_agrees_with_dram_sim_on_random_legal_traffic() {
        // Drive the real module greedily with interleaved traffic, record
        // what it accepts, and require the shadow checker to accept the
        // same trace: the two independent implementations must agree.
        use dram_sim::{AddressMapping, DramModule, PhysAddr};
        let geometry = DramGeometry::test_small();
        let tp = TimingParams::test_fast();
        let mapping = AddressMapping::hpca_default(&geometry);
        let mut dram = DramModule::new(geometry.clone(), tp.clone());
        let mut checker = ShadowTimingChecker::new(geometry, tp);
        let mut rng = oram_rng::StdRng::seed_from_u64(99);
        use oram_rng::Rng;
        let mut accepted = 0u64;
        let mut cycle = 0u64;
        while accepted < 400 {
            dram.tick(cycle);
            // A few random candidate commands per cycle; issue what's legal.
            for _ in 0..4 {
                let addr = PhysAddr(rng.gen_range(0..1u64 << 22) * 64);
                let l = mapping.decode(addr);
                let open = dram.open_row(&l);
                let cmd = match open {
                    None => DramCommand::activate(l),
                    Some(r) if r == l.row => {
                        if rng.gen_bool(0.5) {
                            DramCommand::read(l)
                        } else {
                            DramCommand::write(l)
                        }
                    }
                    Some(r) => DramCommand::precharge(DramLocation { row: r, ..l }),
                };
                if dram.can_issue(&cmd, cycle).is_ok() {
                    dram.issue(cmd, cycle).expect("checked");
                    checker.observe(cycle, cmd);
                    accepted += 1;
                    break; // one command per cycle per module tick
                }
            }
            cycle += 1;
            assert!(cycle < 1_000_000, "generator wedged");
        }
        assert!(
            checker.is_clean(),
            "shadow checker disagreed with dram-sim: {:?}",
            checker.violations()
        );
    }
}
