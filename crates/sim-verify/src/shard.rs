//! Cross-shard residency auditing for the sharded simulation engine.
//!
//! A sharded run partitions the block address space across `N` independent
//! ORAM instances. Two global invariants must hold at any merge point:
//!
//! 1. **Disjoint residency** — no global block address is resident in more
//!    than one shard (a duplicated block would mean duplicated, divergent
//!    state);
//! 2. **Routing consistency** — every block resident in shard `s` actually
//!    belongs there under the routing function (`block mod N == s`), i.e.
//!    the local→global renumbering was applied correctly.
//!
//! The auditor is passive: it consumes per-shard residency snapshots (the
//! protocol layer's position-map entries, renumbered to global addresses)
//! and reports [`Violation`]s with [`Rule::ShardResidency`]. Feed it shards
//! in shard-id order so the violation stream is deterministic.

use std::collections::HashMap;

use crate::violation::{Rule, Violation};

/// Checks the cross-shard residency invariants over one merge point.
///
/// # Examples
///
/// ```
/// use sim_verify::shard::ShardResidencyAuditor;
///
/// let mut auditor = ShardResidencyAuditor::new(2);
/// auditor.record_shard(0, [0u64, 2, 4].iter().copied());
/// auditor.record_shard(1, [1u64, 3].iter().copied());
/// assert!(auditor.finish().is_empty());
/// ```
#[derive(Debug)]
pub struct ShardResidencyAuditor {
    shards: usize,
    /// Global block address → shard id of first sighting.
    seen: HashMap<u64, usize>,
    violations: Vec<Violation>,
}

impl ShardResidencyAuditor {
    /// An auditor for a run with `shards` partitions (`block mod shards`
    /// routing).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
            seen: HashMap::new(),
            violations: Vec::new(),
        }
    }

    /// Records the residency snapshot of one shard: the *global* addresses
    /// of every block the shard currently holds (position map + stash).
    /// Call once per shard, in shard-id order.
    pub fn record_shard(&mut self, shard: usize, resident: impl Iterator<Item = u64>) {
        for block in resident {
            let expected = (block % self.shards as u64) as usize;
            if expected != shard {
                self.violations.push(Violation::new(
                    block,
                    Rule::ShardResidency,
                    format!(
                        "block {block} resident in shard {shard} but routes to shard {expected}"
                    ),
                ));
            }
            if let Some(&first) = self.seen.get(&block) {
                if first != shard {
                    self.violations.push(Violation::new(
                        block,
                        Rule::ShardResidency,
                        format!("block {block} resident in both shard {first} and shard {shard}"),
                    ));
                }
            } else {
                self.seen.insert(block, shard);
            }
        }
    }

    /// Total distinct blocks observed across all recorded shards.
    #[must_use]
    pub fn blocks_seen(&self) -> usize {
        self.seen.len()
    }

    /// Consumes the auditor and returns every violation found.
    #[must_use]
    pub fn finish(self) -> Vec<Violation> {
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_partitions_pass() {
        let mut a = ShardResidencyAuditor::new(4);
        for shard in 0..4usize {
            a.record_shard(shard, (0..32u64).map(|i| i * 4 + shard as u64));
        }
        assert_eq!(a.blocks_seen(), 128);
        assert!(a.finish().is_empty());
    }

    #[test]
    fn duplicate_residency_is_flagged() {
        let mut a = ShardResidencyAuditor::new(2);
        a.record_shard(0, [0u64, 2].iter().copied());
        // Block 2 also claimed by shard 1: both a routing and a duplication
        // violation (2 routes to shard 0).
        a.record_shard(1, [1u64, 2].iter().copied());
        let v = a.finish();
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == Rule::ShardResidency));
        assert!(v
            .iter()
            .any(|v| v.message.contains("both shard 0 and shard 1")));
    }

    #[test]
    fn misrouted_block_is_flagged() {
        let mut a = ShardResidencyAuditor::new(2);
        a.record_shard(0, [1u64].iter().copied());
        let v = a.finish();
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("routes to shard 1"));
    }

    #[test]
    fn singleton_run_accepts_everything() {
        let mut a = ShardResidencyAuditor::new(1);
        a.record_shard(0, (0..100u64).chain(0..100u64));
        assert!(a.finish().is_empty());
    }
}
