//! Backend-agnostic conformance over a command-event stream.
//!
//! The staged pipeline in `string-oram` drives memory through the
//! `mem_sched::MemoryBackend` trait, so the conformance layer can no longer
//! assume a cycle-accurate DRAM behind the trace. [`StreamConformance`]
//! bundles the two stream checkers and applies each exactly where it is
//! meaningful:
//!
//! * the **transaction-order oracle** ([`crate::TxnOrderChecker`]) checks
//!   the ORAM security contract (data commands in non-decreasing
//!   transaction order) on *every* backend — the contract is about the
//!   observable access sequence, not about timing;
//! * the **JEDEC shadow checker** ([`crate::ShadowTimingChecker`]) only
//!   attaches when the backend has a real DRAM model. The fast functional
//!   backend emits data commands without their ACT/PRE preparation, so
//!   timing re-derivation would flag every command — the checker simply
//!   does not apply there.

use dram_sim::geometry::DramGeometry;
use dram_sim::timing::TimingParams;
use mem_sched::CommandEvent;

use crate::oracle::TxnOrderChecker;
use crate::policy::PolicyAuditor;
use crate::shadow::ShadowTimingChecker;
use crate::violation::Violation;

/// The stream checkers applicable to one backend's command events.
#[derive(Debug, Clone)]
pub struct StreamConformance {
    shadow: Option<ShadowTimingChecker>,
    order: Option<TxnOrderChecker>,
    policy: Option<PolicyAuditor>,
}

impl StreamConformance {
    /// A conformance layer with no checkers attached (observing is a no-op).
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            shadow: None,
            order: None,
            policy: None,
        }
    }

    /// The full layer for a cycle-accurate backend: transaction-order
    /// oracle plus JEDEC shadow timing for the given device.
    #[must_use]
    pub fn cycle_accurate(geometry: DramGeometry, timing: TimingParams) -> Self {
        Self {
            shadow: Some(ShadowTimingChecker::new(geometry, timing)),
            order: Some(TxnOrderChecker::new()),
            policy: None,
        }
    }

    /// The layer for a backend without a DRAM model: transaction-order
    /// oracle only.
    #[must_use]
    pub fn order_only() -> Self {
        Self {
            shadow: None,
            order: Some(TxnOrderChecker::new()),
            policy: None,
        }
    }

    /// Upgrades the bare transaction-order oracle to a full
    /// [`PolicyAuditor`] labelled with the scheduling policy under audit
    /// (the auditor embeds the same oracle, so ordering coverage is
    /// unchanged and the canonical data-command digest becomes available).
    /// A no-op on a layer without the order checker — a disabled layer
    /// stays disabled.
    #[must_use]
    pub fn audit_policy(mut self, policy: &str) -> Self {
        if self.order.take().is_some() {
            self.policy = Some(PolicyAuditor::new(policy));
        }
        self
    }

    /// The policy auditor, when [`Self::audit_policy`] attached one.
    #[must_use]
    pub fn policy_auditor(&self) -> Option<&PolicyAuditor> {
        self.policy.as_ref()
    }

    /// Whether any checker is attached.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.shadow.is_some() || self.order.is_some() || self.policy.is_some()
    }

    /// Feeds one command event to every attached checker.
    pub fn observe(&mut self, ev: &CommandEvent) {
        if let Some(shadow) = &mut self.shadow {
            shadow.observe(ev.cycle, ev.cmd);
        }
        if let Some(order) = &mut self.order {
            order.observe(ev);
        }
        if let Some(policy) = &mut self.policy {
            policy.observe(ev);
        }
    }

    /// Takes the violations accumulated by all checkers since the last
    /// call, in checker order (shadow timing first, then transaction
    /// order). Checker state is kept, so streaming continues seamlessly.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        let mut out = Vec::new();
        if let Some(shadow) = &mut self.shadow {
            out.extend(shadow.take_violations());
        }
        if let Some(order) = &mut self.order {
            out.extend(order.take_violations());
        }
        if let Some(policy) = &mut self.policy {
            out.extend(policy.take_violations());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{DramCommand, DramLocation};
    use mem_sched::TxnId;

    fn data_event(cycle: u64, txn: u64) -> CommandEvent {
        CommandEvent {
            cycle,
            cmd: DramCommand::read(DramLocation {
                channel: 0,
                rank: 0,
                bank: 0,
                row: 1,
                column: 0,
            }),
            txn: Some(TxnId(txn)),
        }
    }

    #[test]
    fn disabled_layer_observes_nothing() {
        let mut c = StreamConformance::disabled();
        assert!(!c.is_enabled());
        c.observe(&data_event(0, 5));
        c.observe(&data_event(1, 0)); // out of order, but nobody watches
        assert!(c.take_violations().is_empty());
    }

    #[test]
    fn order_only_flags_reordered_data() {
        let mut c = StreamConformance::order_only();
        assert!(c.is_enabled());
        c.observe(&data_event(0, 5));
        c.observe(&data_event(1, 3));
        let v = c.take_violations();
        assert_eq!(v.len(), 1);
        // State persists across takes: further in-order traffic is clean.
        c.observe(&data_event(2, 6));
        assert!(c.take_violations().is_empty());
    }

    #[test]
    fn order_only_ignores_missing_jedec_preparation() {
        // A bare RD with no prior ACT: the shadow checker would flag this,
        // the order-only layer must not (the functional backend emits
        // exactly this shape).
        let mut c = StreamConformance::order_only();
        c.observe(&data_event(0, 0));
        assert!(c.take_violations().is_empty());
    }

    #[test]
    fn cycle_accurate_layer_runs_shadow_checker() {
        let mut c = StreamConformance::cycle_accurate(
            DramGeometry::test_small(),
            TimingParams::test_fast(),
        );
        // RD into a closed bank — a JEDEC violation the shadow layer catches.
        c.observe(&data_event(0, 0));
        let v = c.take_violations();
        assert!(!v.is_empty(), "shadow checker must flag RD without ACT");
    }
}
