//! Violation records shared by every checker in the crate.

/// The specific rule a checker found violated.
///
/// Timing rules carry the JEDEC name they re-derive; protocol rules carry
/// the Ring ORAM invariant; `TxnOrder` is the paper's security contract
/// (data commands in transaction order); `Divergence` marks a differential
/// mismatch between two runs that must agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Rule {
    /// Two commands on one channel's command bus in the same cycle.
    CmdBus,
    /// Data bursts overlap on a channel (or miss the read/write turnaround).
    DataBus,
    /// Structural bank-state error: ACT on an open bank, PRE or column
    /// command on a closed bank, or a column command to the wrong row.
    BankState,
    /// ACT sooner than tRCD before a column command.
    Trcd,
    /// ACT sooner than tRP after a PRE.
    Trp,
    /// PRE sooner than tRAS after the bank's ACT.
    Tras,
    /// ACT sooner than tRC after the bank's previous ACT.
    Trc,
    /// Column command sooner than tCCD (or same-group tCCD_L) after the
    /// previous column command.
    Tccd,
    /// ACT sooner than tRRD (or same-group tRRD_L) after the rank's
    /// previous ACT.
    Trrd,
    /// A fifth ACT inside one tFAW rolling window.
    Tfaw,
    /// RD sooner than tWTR after the end of a write burst on the rank.
    Twtr,
    /// PRE sooner than tWR after the end of the bank's write burst.
    Twr,
    /// PRE sooner than tRTP after the bank's RD.
    Trtp,
    /// Command issued while the rank was refreshing (inside tRFC).
    Refresh,
    /// Command coordinates outside the configured geometry.
    OutOfRange,
    /// Data command (RD/WR) issued out of ORAM transaction order — the
    /// security contract both schedulers must uphold.
    TxnOrder,
    /// Stash occupancy observed above its configured bound after an access
    /// completed (background eviction failed to drain it).
    StashBound,
    /// A slot touch addressed a slot index at or beyond `Z + S - Y`.
    SlotRange,
    /// A bucket slot was read twice by read paths within one reshuffle
    /// epoch (dummies and reals alike must be touched at most once).
    SlotReuse,
    /// A bucket served more than `S` read-path touches in one epoch.
    BucketBudget,
    /// Evictions did not fire at exactly one per `A` read paths.
    EvictionCadence,
    /// A plan's read/write touch counts do not match its kind's shape.
    PlanShape,
    /// An injected integrity fault was never detected (the integrity tag
    /// is missing or was not checked).
    FaultUndetected,
    /// A detected integrity fault ended unrecovered: its payload was lost
    /// despite (or for lack of) the bounded retry budget.
    FaultUnrecovered,
    /// A retry-read plan touch without a matching `Retried` fault event,
    /// or retried slots that were never made public by a read plan.
    RetryMismatch,
    /// Two runs that must agree (differential oracle) diverged.
    Divergence,
    /// A block was resident in (or routed to) more than one shard of a
    /// sharded simulation — shards must partition the address space.
    ShardResidency,
    /// A fixed-rate service tick submitted the wrong number of slots (the
    /// submission envelope must be a pure function of the policy, never of
    /// the offered load).
    ServiceEnvelope,
    /// A tenant queue was observed deeper than its configured capacity —
    /// admission control failed to shed.
    ServiceQueueBound,
    /// A service request resolved other than exactly once (double
    /// completion, double timeout, or never resolved by drain).
    ServiceResolution,
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Self::CmdBus => "cmd-bus",
            Self::DataBus => "data-bus",
            Self::BankState => "bank-state",
            Self::Trcd => "tRCD",
            Self::Trp => "tRP",
            Self::Tras => "tRAS",
            Self::Trc => "tRC",
            Self::Tccd => "tCCD",
            Self::Trrd => "tRRD",
            Self::Tfaw => "tFAW",
            Self::Twtr => "tWTR",
            Self::Twr => "tWR",
            Self::Trtp => "tRTP",
            Self::Refresh => "refresh",
            Self::OutOfRange => "out-of-range",
            Self::TxnOrder => "txn-order",
            Self::StashBound => "stash-bound",
            Self::SlotRange => "slot-range",
            Self::SlotReuse => "slot-reuse",
            Self::BucketBudget => "bucket-budget",
            Self::EvictionCadence => "eviction-cadence",
            Self::PlanShape => "plan-shape",
            Self::FaultUndetected => "fault-undetected",
            Self::FaultUnrecovered => "fault-unrecovered",
            Self::RetryMismatch => "retry-mismatch",
            Self::Divergence => "divergence",
            Self::ShardResidency => "shard-residency",
            Self::ServiceEnvelope => "service-envelope",
            Self::ServiceQueueBound => "service-queue-bound",
            Self::ServiceResolution => "service-resolution",
        };
        f.write_str(name)
    }
}

/// One conformance violation: which rule broke, when, and a human-readable
/// account of the evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Bus cycle (timing checks) or access index (protocol checks) at which
    /// the violation was observed.
    pub cycle: u64,
    /// The rule that was broken.
    pub rule: Rule,
    /// Evidence: the command or touch involved and the bound it missed.
    pub message: String,
}

impl Violation {
    /// Creates a violation record.
    #[must_use]
    pub fn new(cycle: u64, rule: Rule, message: impl Into<String>) -> Self {
        Self {
            cycle,
            rule,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] at {}: {}", self.rule, self.cycle, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_rule_and_cycle() {
        let v = Violation::new(42, Rule::Trcd, "RD 3 cycles after ACT");
        let s = v.to_string();
        assert!(s.contains("tRCD"));
        assert!(s.contains("42"));
        assert!(s.contains("after ACT"));
    }

    #[test]
    fn rule_names_are_distinct() {
        let rules = [
            Rule::CmdBus,
            Rule::DataBus,
            Rule::BankState,
            Rule::Trcd,
            Rule::Trp,
            Rule::Tras,
            Rule::Trc,
            Rule::Tccd,
            Rule::Trrd,
            Rule::Tfaw,
            Rule::Twtr,
            Rule::Twr,
            Rule::Trtp,
            Rule::Refresh,
            Rule::OutOfRange,
            Rule::TxnOrder,
            Rule::StashBound,
            Rule::SlotRange,
            Rule::SlotReuse,
            Rule::BucketBudget,
            Rule::EvictionCadence,
            Rule::PlanShape,
            Rule::FaultUndetected,
            Rule::FaultUnrecovered,
            Rule::RetryMismatch,
            Rule::Divergence,
            Rule::ShardResidency,
            Rule::ServiceEnvelope,
            Rule::ServiceQueueBound,
            Rule::ServiceResolution,
        ];
        let names: std::collections::HashSet<String> =
            rules.iter().map(ToString::to_string).collect();
        assert_eq!(names.len(), rules.len());
    }
}
