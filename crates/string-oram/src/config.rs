//! Whole-system configuration.

use dram_sim::geometry::DramGeometry;
use dram_sim::timing::TimingParams;
use dram_sim::DramFaultConfig;
use mem_sched::{PagePolicy, ResponseFaultConfig, SchedulerPolicy};
use ring_oram::{ProtocolKind, ResilienceConfig, RingConfig};

/// Why a [`SystemConfig`] was rejected (see `Simulation::try_new`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A configuration constraint was violated.
    Invalid(String),
    /// The configuration requests a feature the selected protocol cannot
    /// provide (e.g. fault injection on an engine without an
    /// integrity-checked retry layer).
    Unsupported {
        /// Label of the selected protocol ([`ProtocolKind::label`]).
        protocol: &'static str,
        /// The unsupported feature, human-readable.
        feature: String,
    },
    /// The number of traces handed to the simulation does not match
    /// `cfg.cores`.
    TraceCount {
        /// `cfg.cores`.
        expected: usize,
        /// Traces actually provided.
        got: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Invalid(msg) => write!(f, "invalid SystemConfig: {msg}"),
            Self::Unsupported { protocol, feature } => {
                write!(f, "the {protocol} protocol does not support {feature}")
            }
            Self::TraceCount { expected, got } => {
                write!(f, "need exactly one trace per core ({expected}), got {got}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<String> for ConfigError {
    fn from(msg: String) -> Self {
        Self::Invalid(msg)
    }
}

impl From<&str> for ConfigError {
    fn from(msg: &str) -> Self {
        Self::Invalid(msg.to_string())
    }
}

impl From<mem_sched::FaultConfigError> for ConfigError {
    fn from(e: mem_sched::FaultConfigError) -> Self {
        Self::Invalid(e.to_string())
    }
}

/// The four design points the paper's evaluation compares (Fig. 10-12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// State-of-the-art Ring ORAM: no Compact Bucket, transaction-based
    /// scheduling.
    Baseline,
    /// Compact Bucket only (spatial optimization).
    Cb,
    /// Proactive Bank only (temporal optimization).
    Pb,
    /// The full String ORAM framework: CB + PB.
    All,
}

impl Scheme {
    /// All four schemes in the paper's presentation order.
    pub const ALL: [Scheme; 4] = [Scheme::Baseline, Scheme::Cb, Scheme::Pb, Scheme::All];

    /// Label used in figures ("1. Baseline", "2. CB", ...).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Baseline => "Baseline",
            Self::Cb => "CB",
            Self::Pb => "PB",
            Self::All => "ALL",
        }
    }

    /// Whether the Compact Bucket is enabled.
    #[must_use]
    pub fn uses_cb(self) -> bool {
        matches!(self, Self::Cb | Self::All)
    }

    /// Whether the Proactive Bank scheduler is enabled.
    #[must_use]
    pub fn uses_pb(self) -> bool {
        matches!(self, Self::Pb | Self::All)
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which physical address mapping the memory controller uses (ablation
/// knob; the paper fixes `row:bank:column:rank:channel:offset`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingKind {
    /// The paper's channel-striped mapping (consecutive lines alternate
    /// channels; subtree row sets span all channels).
    PaperStriped,
    /// Channel-in-MSBs mapping: each channel owns a contiguous region, so
    /// a path gets no channel-level parallelism.
    Sequential,
}

/// Which tree-to-memory layout the system uses (ablation knob; the paper
/// always uses the subtree layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    /// Subtree layout (Ren et al.) sized to the row set.
    Subtree,
    /// Naive breadth-first layout (each level contiguous).
    Naive,
}

/// Which memory backend serves the pipeline's transactions.
///
/// Both backends observe the *same* ORAM access sequence (the protocol and
/// transaction layers are backend-independent); they differ only in how
/// memory time is modeled. The differential test in `string-oram` pins this
/// equivalence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// The paper's evaluation substrate: `mem-sched`'s FR-FCFS controller
    /// over `dram-sim`'s cycle-accurate bank/rank/channel machines.
    #[default]
    CycleAccurate,
    /// `mem-sched`'s functional backend: row-aware fixed latencies, no
    /// per-cycle DRAM state. Roughly an order of magnitude faster; use for
    /// long traces and protocol-level studies. No DRAM-level stats, energy
    /// model, JEDEC shadow checking, or fault injection.
    FastFunctional,
}

/// Full-system parameters: processor (Table I), memory subsystem (Table II)
/// and ORAM (Table III).
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Which ORAM protocol the pipeline drives (the cross-protocol arena
    /// selector). [`ProtocolKind::RingCb`] — the paper's design point — is
    /// the default in every preset; the other kinds reinterpret
    /// [`Self::ring`] through [`Self::effective_ring`]: plain `Ring`
    /// forces `y = 0` (no CB substitution), `Path`/`Circuit` force
    /// `S = Y = 1` (buckets of exactly `Z` slots, no dummy budget).
    pub protocol: ProtocolKind,
    /// Ring ORAM parameters. `ring.y` is forced to 0 by [`Self::for_scheme`]
    /// when the scheme disables CB.
    pub ring: RingConfig,
    /// DRAM geometry (channels/ranks/banks/rows/columns).
    pub geometry: DramGeometry,
    /// DRAM timing parameters.
    pub timing: TimingParams,
    /// Command-scheduling policy the memory controller runs (one of the
    /// five `mem-sched` policy-lab points; presets select the paper's
    /// transaction-based baseline or Proactive Bank via
    /// [`Self::for_scheme`]).
    pub sched_policy: SchedulerPolicy,
    /// Entries per direction per channel in the controller queues.
    pub queue_capacity: usize,
    /// Number of cores (Table I: 4).
    pub cores: usize,
    /// Instructions retired per CPU cycle per core (Table I: 4).
    pub retire_width: u32,
    /// CPU cycles per memory bus cycle (3.2 GHz over DDR3-1600's 800 MHz
    /// bus = 4).
    pub cpu_cycles_per_mem_cycle: u32,
    /// Maximum unfinished ORAM transactions before the controller stops
    /// planning new accesses (keeps transaction *i+1* visible for PB).
    pub max_inflight_txns: usize,
    /// Outstanding LLC misses a core may keep in flight before stalling
    /// (the ROB's memory-level parallelism; 1 = blocking misses).
    pub core_mlp: usize,
    /// Tree pre-load factor (see `ring_oram::protocol`).
    pub load_factor: f64,
    /// Seed for all protocol and layout randomness.
    pub seed: u64,
    /// Tree-to-memory layout (the paper always uses [`LayoutKind::Subtree`];
    /// [`LayoutKind::Naive`] exists for the layout ablation).
    pub layout: LayoutKind,
    /// Row-buffer management policy (the paper assumes open-page; §II-C).
    pub page_policy: PagePolicy,
    /// Recursive position-map settings. `None` (the paper's assumption)
    /// keeps the full position map on-chip; `Some` stores it in a stack of
    /// smaller ORAMs whose traffic the simulation then carries.
    pub recursion: Option<RecursionSettings>,
    /// Physical address mapping (paper default: channel-striped).
    pub mapping: MappingKind,
    /// Memory backend serving the pipeline (paper default: cycle-accurate).
    pub backend: BackendKind,
    /// Number of independent shard instances for the parallel engine
    /// (`crate::ShardedSimulation`). Must be a power of two. `1` (the
    /// default) is the unsharded single-threaded pipeline; `N > 1`
    /// partitions the block address space into `N` subtree-forest shards,
    /// each with its own pipeline, backend and seeded RNG stream.
    pub shards: usize,
    /// Passive conformance checking (off for measurement, on in tests).
    pub verify: VerifyConfig,
    /// Deterministic fault injection across the memory stack. `None` (the
    /// default) runs fault-free; `Some` enables ciphertext corruption with
    /// integrity-checked retries at the ORAM layer plus timing faults in
    /// the controller and DRAM models.
    pub faults: Option<FaultConfig>,
}

/// Composite fault-injection configuration for one simulation.
///
/// Each layer draws from its own seeded schedule, so the three components
/// are independent and individually zeroable. Fault randomness never
/// touches the protocol RNG: a faulty run issues the *same* access
/// sequence as the fault-free run with the same protocol seed — faults
/// perturb latency and add retries at already-public slots only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// ORAM-layer faults: in-transit ciphertext bit flips, bounded
    /// re-read retries, and the stash-pressure degradation watermarks.
    pub resilience: ResilienceConfig,
    /// DRAM-layer faults: refresh storms (stretched tRFC) and weak rows
    /// (post-ACT stalls).
    pub dram: DramFaultConfig,
    /// Controller-layer faults: dropped and late data responses plus
    /// queue-saturation windows.
    pub memctrl: ResponseFaultConfig,
}

impl FaultConfig {
    /// A small, all-layers-active preset for smoke tests: every fault
    /// class fires at `rate`, sized for the given stash capacity.
    #[must_use]
    pub fn smoke(seed: u64, rate: f64, stash_capacity: usize) -> Self {
        Self {
            resilience: ResilienceConfig {
                fault_seed: seed,
                bit_flip_rate: rate,
                ..ResilienceConfig::for_stash(stash_capacity)
            },
            dram: DramFaultConfig {
                seed: seed ^ 0xD7A3,
                storm_rate: rate,
                storm_factor: 4,
                weak_row_rate: rate,
                weak_row_stall: 24,
            },
            memctrl: ResponseFaultConfig {
                seed: seed ^ 0x3C97,
                late_rate: rate,
                late_delay: 32,
                drop_rate: rate.min(0.5),
                saturation_rate: rate,
            },
        }
    }
}

/// Configuration of the passive conformance layer (the `sim-verify` crate).
///
/// When enabled, the simulation records the controller's command trace and
/// the protocol's plan stream and re-validates both against independently
/// reimplemented rules: JEDEC timing plus the transaction-order security
/// contract ([`Self::shadow_timing`]) and the Ring ORAM structural
/// invariants ([`Self::oram_audit`]). Findings surface in
/// `SimReport::violations`; with [`Self::fail_fast`] the simulation panics
/// at the first finding instead (for `#[should_panic]` negative tests).
///
/// Everything is off by default so measurement runs pay no tracing cost;
/// the `test_small` preset turns the checkers on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerifyConfig {
    /// Re-check every issued DRAM command against the JEDEC timing rules
    /// and the transaction-order contract.
    pub shadow_timing: bool,
    /// Replay every access plan against the Ring ORAM invariants.
    pub oram_audit: bool,
    /// Panic on the first violation instead of accumulating into the
    /// report.
    pub fail_fast: bool,
}

impl VerifyConfig {
    /// All checkers off (the measurement default).
    #[must_use]
    pub fn off() -> Self {
        Self::default()
    }

    /// All checkers on, accumulating violations into the report.
    #[must_use]
    pub fn checked() -> Self {
        Self {
            shadow_timing: true,
            oram_audit: true,
            fail_fast: false,
        }
    }
}

/// Parameters of the recursive position-map extension (see
/// `ring_oram::recursive`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecursionSettings {
    /// Blocks whose positions are tracked.
    pub tracked_blocks: u64,
    /// Position entries per map block.
    pub positions_per_block: u32,
    /// Entries the innermost on-chip map may hold.
    pub max_onchip_entries: u64,
}

impl SystemConfig {
    /// The paper's full default configuration (Tables I-III) for a scheme.
    #[must_use]
    pub fn hpca_default(scheme: Scheme) -> Self {
        Self::for_scheme(
            Self {
                protocol: ProtocolKind::RingCb,
                ring: RingConfig::hpca_default(),
                geometry: DramGeometry::hpca_default(),
                timing: TimingParams::ddr3_1600(),
                sched_policy: SchedulerPolicy::TransactionBased,
                queue_capacity: 64,
                cores: 4,
                retire_width: 4,
                cpu_cycles_per_mem_cycle: 4,
                max_inflight_txns: 6,
                core_mlp: 1,
                load_factor: ring_oram::RingOram::DEFAULT_LOAD_FACTOR,
                seed: 0xD15EA5E,
                layout: LayoutKind::Subtree,
                page_policy: PagePolicy::Open,
                recursion: None,
                mapping: MappingKind::PaperStriped,
                backend: BackendKind::CycleAccurate,
                shards: 1,
                verify: VerifyConfig::off(),
                faults: None,
            },
            scheme,
        )
    }

    /// A scaled-down configuration for tests and quick experiments: the
    /// paper's structure (Z=8, S=12, A=8, Y=8) over a 14-level tree with
    /// fast DRAM timing.
    #[must_use]
    pub fn test_small(scheme: Scheme) -> Self {
        let ring = RingConfig {
            levels: 14,
            tree_top_cached_levels: 4,
            stash_capacity: 200,
            ..RingConfig::hpca_default()
        };
        Self::for_scheme(
            Self {
                protocol: ProtocolKind::RingCb,
                ring,
                geometry: DramGeometry::test_medium(),
                timing: TimingParams::test_fast(),
                sched_policy: SchedulerPolicy::TransactionBased,
                queue_capacity: 64,
                cores: 2,
                retire_width: 4,
                cpu_cycles_per_mem_cycle: 4,
                max_inflight_txns: 6,
                core_mlp: 1,
                load_factor: 0.5,
                seed: 0xD15EA5E,
                layout: LayoutKind::Subtree,
                page_policy: PagePolicy::Open,
                recursion: None,
                mapping: MappingKind::PaperStriped,
                backend: BackendKind::CycleAccurate,
                shards: 1,
                verify: VerifyConfig::checked(),
                faults: None,
            },
            scheme,
        )
    }

    /// Applies a scheme to a base configuration: CB on/off toggles `ring.y`
    /// (off forces 0), PB on/off selects the scheduler policy.
    #[must_use]
    pub fn for_scheme(mut base: Self, scheme: Scheme) -> Self {
        if !scheme.uses_cb() {
            base.ring.y = 0;
        }
        base.sched_policy = if scheme.uses_pb() {
            SchedulerPolicy::proactive()
        } else {
            SchedulerPolicy::TransactionBased
        };
        base
    }

    /// Instructions one core can retire per memory cycle.
    #[must_use]
    pub fn instructions_per_mem_cycle(&self) -> u64 {
        u64::from(self.retire_width) * u64::from(self.cpu_cycles_per_mem_cycle)
    }

    /// The row-set size: DRAM row bytes times channels — the natural
    /// locality window under the paper's channel-striped address mapping,
    /// used to size subtree-layout groups.
    #[must_use]
    pub fn row_set_bytes(&self) -> u64 {
        self.geometry.row_bytes() * u64::from(self.geometry.channels)
    }

    /// The [`RingConfig`] the selected protocol actually runs with.
    ///
    /// [`ProtocolKind::RingCb`] uses [`Self::ring`] verbatim; plain `Ring`
    /// is the same geometry with CB substitution disabled (`y = 0`);
    /// `Path`/`Circuit` buckets are exactly `Z` slots, encoded as
    /// `S = Y = 1` (`bucket_slots = Z + S - Y = Z`) so the layout,
    /// sharding and audit layers size correctly. Every consumer of the
    /// ring parameters downstream of the protocol selector (planner,
    /// layout, conformance, sharded engine) must use this, not
    /// [`Self::ring`].
    #[must_use]
    pub fn effective_ring(&self) -> RingConfig {
        let mut ring = self.ring.clone();
        match self.protocol {
            ProtocolKind::RingCb => {}
            ProtocolKind::Ring => ring.y = 0,
            ProtocolKind::Path | ProtocolKind::Circuit => {
                ring.s = 1;
                ring.y = 1;
            }
        }
        ring
    }

    /// Validates the composite configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint across all components, plus
    /// cross-component checks (the ORAM tree must fit the DRAM module) and
    /// protocol-capability checks ([`ConfigError::Unsupported`] names the
    /// protocol that cannot provide a requested feature).
    pub fn validate(&self) -> Result<(), ConfigError> {
        let ring = self.effective_ring();
        ring.validate()?;
        self.geometry.validate()?;
        self.timing.validate()?;
        if self.cores == 0 {
            return Err("cores must be nonzero".into());
        }
        if self.retire_width == 0 || self.cpu_cycles_per_mem_cycle == 0 {
            return Err("retire_width and cpu_cycles_per_mem_cycle must be nonzero".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be nonzero".into());
        }
        if self.max_inflight_txns < 2 {
            return Err("max_inflight_txns must be at least 2 (PB needs i+1 visible)".into());
        }
        if self.core_mlp == 0 {
            return Err("core_mlp must be at least 1".into());
        }
        match self.sched_policy {
            SchedulerPolicy::ReadOverWrite { drain_bound: 0 } => {
                return Err("read-over-write drain_bound must be at least 1".into());
            }
            SchedulerPolicy::SpeculativeWindow { window: 0 } => {
                return Err("speculative-window window must be at least 1".into());
            }
            SchedulerPolicy::FixedCadence { period: 0 } => {
                return Err("fixed-cadence period must be at least 1".into());
            }
            _ => {}
        }
        if !(0.0..=1.0).contains(&self.load_factor) {
            return Err("load_factor must be in [0, 1]".into());
        }
        // Sharding: the map constructor enforces the power-of-two count and
        // the per-shard tree derivation enforces the depth floor.
        let map = ring_oram::ShardMap::new(self.shards)?;
        map.shard_ring_config(&ring)?;
        // Protocol-capability seams, checked before the per-layer fault
        // validators so the error names the responsible protocol.
        let non_ring = matches!(self.protocol, ProtocolKind::Path | ProtocolKind::Circuit);
        if non_ring && self.recursion.is_some() {
            return Err(ConfigError::Unsupported {
                protocol: self.protocol.label(),
                feature: "a recursive position map (the recursion stack is built from Ring \
                          engines)"
                    .into(),
            });
        }
        if let Some(f) = &self.faults {
            if non_ring {
                return Err(ConfigError::Unsupported {
                    protocol: self.protocol.label(),
                    feature: "fault injection (no integrity-checked retry layer)".into(),
                });
            }
            if self.backend == BackendKind::FastFunctional {
                return Err(ConfigError::Invalid(
                    "fault injection requires the cycle-accurate backend (the functional \
                     backend has no DRAM or controller timing state to perturb)"
                        .into(),
                ));
            }
            if self.recursion.is_some() {
                return Err(ConfigError::Unsupported {
                    protocol: self.protocol.label(),
                    feature: "fault injection with a recursive position map".into(),
                });
            }
            f.resilience.validate(ring.stash_capacity)?;
            f.dram.validate()?;
            f.memctrl.validate()?;
        }
        use ring_oram::layout::TreeLayout;
        let total = match self.layout {
            LayoutKind::Subtree => {
                ring_oram::layout::SubtreeLayout::new(&ring, self.row_set_bytes()).total_bytes()
            }
            LayoutKind::Naive => ring_oram::layout::NaiveLayout::new(&ring).total_bytes(),
        };
        if total > self.geometry.capacity_bytes() {
            return Err(ConfigError::Invalid(format!(
                "ORAM tree ({} B laid out) exceeds DRAM capacity ({} B)",
                total,
                self.geometry.capacity_bytes()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemes_toggle_the_right_knobs() {
        let base = SystemConfig::hpca_default(Scheme::Baseline);
        assert_eq!(base.ring.y, 0);
        assert_eq!(base.sched_policy, SchedulerPolicy::TransactionBased);

        let cb = SystemConfig::hpca_default(Scheme::Cb);
        assert_eq!(cb.ring.y, 8);
        assert_eq!(cb.sched_policy, SchedulerPolicy::TransactionBased);

        let pb = SystemConfig::hpca_default(Scheme::Pb);
        assert_eq!(pb.ring.y, 0);
        assert_eq!(pb.sched_policy, SchedulerPolicy::proactive());

        let all = SystemConfig::hpca_default(Scheme::All);
        assert_eq!(all.ring.y, 8);
        assert_eq!(all.sched_policy, SchedulerPolicy::proactive());
    }

    #[test]
    fn defaults_validate() {
        for s in Scheme::ALL {
            SystemConfig::hpca_default(s).validate().unwrap();
            SystemConfig::test_small(s).validate().unwrap();
        }
    }

    #[test]
    fn default_tree_fits_module() {
        // The paper's 20 GB baseline tree (and 12 GB CB tree) must fit the
        // 32 GB module even with subtree padding.
        let cfg = SystemConfig::hpca_default(Scheme::Baseline);
        cfg.validate().unwrap();
    }

    #[test]
    fn instructions_per_mem_cycle_matches_tables() {
        let cfg = SystemConfig::hpca_default(Scheme::Baseline);
        // 4-wide at 3.2 GHz against an 800 MHz bus: 16 instructions.
        assert_eq!(cfg.instructions_per_mem_cycle(), 16);
        assert_eq!(cfg.row_set_bytes(), 16384);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Scheme::Baseline.label(), "Baseline");
        assert_eq!(Scheme::All.to_string(), "ALL");
        assert!(Scheme::All.uses_cb() && Scheme::All.uses_pb());
        assert!(!Scheme::Baseline.uses_cb() && !Scheme::Baseline.uses_pb());
    }

    #[test]
    fn cross_component_check_fires() {
        let mut cfg = SystemConfig::test_small(Scheme::Baseline);
        cfg.ring.levels = 20; // far larger than the small module
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn functional_backend_rejects_faults() {
        let mut cfg = SystemConfig::test_small(Scheme::Baseline);
        cfg.backend = BackendKind::FastFunctional;
        cfg.faults = Some(FaultConfig::smoke(1, 0.01, cfg.ring.stash_capacity));
        assert!(cfg.validate().is_err());
        cfg.faults = None;
        cfg.validate().unwrap();
    }

    #[test]
    fn shard_count_must_be_power_of_two_and_splittable() {
        let mut cfg = SystemConfig::test_small(Scheme::Baseline);
        cfg.shards = 3;
        assert!(cfg.validate().is_err());
        cfg.shards = 4;
        cfg.validate().unwrap();
        // 14-level tree with 4 cached levels: 1024 shards would leave fewer
        // than cached + 1 levels per shard.
        cfg.shards = 1024;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn inflight_floor_enforced() {
        let mut cfg = SystemConfig::test_small(Scheme::Pb);
        cfg.max_inflight_txns = 1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn effective_ring_per_protocol() {
        let cfg = SystemConfig::test_small(Scheme::All);
        assert_eq!(cfg.protocol, ProtocolKind::RingCb);
        // RingCb: verbatim — the bit-invisibility anchor.
        assert_eq!(cfg.effective_ring(), cfg.ring);

        let mut plain = cfg.clone();
        plain.protocol = ProtocolKind::Ring;
        let r = plain.effective_ring();
        assert_eq!(r.y, 0);
        assert_eq!(
            (r.levels, r.z, r.s),
            (cfg.ring.levels, cfg.ring.z, cfg.ring.s)
        );

        for kind in [ProtocolKind::Path, ProtocolKind::Circuit] {
            let mut c = cfg.clone();
            c.protocol = kind;
            let r = c.effective_ring();
            assert_eq!((r.s, r.y), (1, 1));
            assert_eq!(r.bucket_slots(), r.z);
            c.validate().unwrap();
        }
    }

    fn recursion_settings() -> RecursionSettings {
        RecursionSettings {
            tracked_blocks: 1 << 10,
            positions_per_block: 16,
            max_onchip_entries: 256,
        }
    }

    /// Satellite seam: every protocol × {faults, recursion, both}
    /// combination either validates or returns a structured
    /// [`ConfigError::Unsupported`] naming the protocol.
    #[test]
    fn fault_and_recursion_combinations_per_protocol() {
        for kind in ProtocolKind::ALL {
            let base = {
                let mut c = SystemConfig::test_small(Scheme::All);
                c.protocol = kind;
                c
            };
            let ring_based = matches!(kind, ProtocolKind::RingCb | ProtocolKind::Ring);

            // Faults alone (cycle-accurate backend).
            let mut faulty = base.clone();
            faulty.faults = Some(FaultConfig::smoke(1, 0.01, base.ring.stash_capacity));
            if ring_based {
                faulty.validate().unwrap();
            } else {
                match faulty.validate() {
                    Err(ConfigError::Unsupported { protocol, feature }) => {
                        assert_eq!(protocol, kind.label());
                        assert!(feature.contains("fault injection"), "{feature}");
                    }
                    other => panic!("expected Unsupported, got {other:?}"),
                }
            }

            // Recursion alone: supported by the Ring engines only (the
            // recursion stack is built from Ring instances).
            let mut recursive = base.clone();
            recursive.recursion = Some(recursion_settings());
            if ring_based {
                recursive.validate().unwrap();
            } else {
                match recursive.validate() {
                    Err(ConfigError::Unsupported { protocol, feature }) => {
                        assert_eq!(protocol, kind.label());
                        assert!(feature.contains("recursive"), "{feature}");
                    }
                    other => panic!("expected Unsupported, got {other:?}"),
                }
            }

            // Both: structured rejection for every protocol — the Ring
            // engines support each feature separately but not combined.
            let mut both = base.clone();
            both.faults = Some(FaultConfig::smoke(1, 0.01, base.ring.stash_capacity));
            both.recursion = Some(recursion_settings());
            match both.validate() {
                Err(ConfigError::Unsupported { protocol, feature }) => {
                    assert_eq!(protocol, kind.label());
                    assert!(
                        both.validate()
                            .unwrap_err()
                            .to_string()
                            .contains("recursive")
                            || !ring_based,
                        "{feature}"
                    );
                }
                other => panic!("expected Unsupported, got {other:?}"),
            }
        }
    }
}
