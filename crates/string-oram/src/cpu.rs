//! Trace-driven core model.
//!
//! Table I's CMP (4 cores, 4-wide, 128-entry ROB) is modeled at the level
//! that matters to the memory system: each core retires up to
//! `retire_width x cpu_cycles_per_mem_cycle` instructions per memory cycle
//! until it reaches the next memory operation in its trace, issues it, and
//! continues — up to `max_outstanding` misses may be in flight before the
//! core stalls (the ROB's memory-level parallelism). With
//! `max_outstanding = 1` the core blocks on every miss, the conservative
//! model; ORAM serializes transactions at the controller anyway, so MLP
//! mainly keeps the ORAM request queue fed (see the `ablation_mlp` bench).

use trace_synth::TraceRecord;

/// Execution state of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// Retiring gap instructions (possibly with misses in flight).
    Running,
    /// At the outstanding-miss limit; waiting for a completion.
    Blocked,
    /// Trace exhausted (in-flight misses may still be draining).
    Done,
}

/// A memory operation a core wants serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreRequest {
    /// Issuing core.
    pub core: usize,
    /// Block (cache-line) address.
    pub block: u64,
    /// Store or load.
    pub is_write: bool,
}

/// One trace-driven core.
#[derive(Debug, Clone)]
pub struct Core {
    id: usize,
    trace: Vec<TraceRecord>,
    next: usize,
    gap_remaining: u64,
    outstanding: usize,
    max_outstanding: usize,
    instructions_retired: u64,
    /// Memory cycles spent stalled at the outstanding-miss limit.
    blocked_cycles: u64,
}

impl Core {
    /// Creates a blocking-miss core (one outstanding miss) over its trace.
    #[must_use]
    pub fn new(id: usize, trace: Vec<TraceRecord>) -> Self {
        Self::with_mlp(id, trace, 1)
    }

    /// Creates a core that may keep up to `max_outstanding` misses in
    /// flight before stalling.
    ///
    /// # Panics
    ///
    /// Panics if `max_outstanding` is zero.
    #[must_use]
    pub fn with_mlp(id: usize, trace: Vec<TraceRecord>, max_outstanding: usize) -> Self {
        assert!(max_outstanding >= 1, "max_outstanding must be at least 1");
        let mut c = Self {
            id,
            trace,
            next: 0,
            gap_remaining: 0,
            outstanding: 0,
            max_outstanding,
            instructions_retired: 0,
            blocked_cycles: 0,
        };
        c.load_next_gap();
        c
    }

    fn load_next_gap(&mut self) {
        if self.next < self.trace.len() {
            self.gap_remaining = u64::from(self.trace[self.next].gap_instructions);
        }
    }

    /// Core id.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> CoreState {
        if self.next >= self.trace.len() {
            CoreState::Done
        } else if self.outstanding >= self.max_outstanding {
            CoreState::Blocked
        } else {
            CoreState::Running
        }
    }

    /// Instructions retired so far.
    #[must_use]
    pub fn instructions_retired(&self) -> u64 {
        self.instructions_retired
    }

    /// Memory cycles spent stalled at the miss limit so far.
    #[must_use]
    pub fn blocked_cycles(&self) -> u64 {
        self.blocked_cycles
    }

    /// Trace records consumed (memory ops issued) so far.
    #[must_use]
    pub fn records_consumed(&self) -> usize {
        self.next
    }

    /// Misses currently in flight.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Advances the core by one memory cycle with an instruction budget of
    /// `ipc_budget`. Returns a [`CoreRequest`] when the core issues its
    /// next memory operation.
    pub fn tick(&mut self, ipc_budget: u64) -> Option<CoreRequest> {
        match self.state() {
            CoreState::Done => None,
            CoreState::Blocked => {
                self.blocked_cycles += 1;
                None
            }
            CoreState::Running => {
                let retired = self.gap_remaining.min(ipc_budget);
                self.gap_remaining -= retired;
                self.instructions_retired += retired;
                if self.gap_remaining > 0 {
                    return None;
                }
                // Gap done: issue the memory operation; the memory
                // instruction itself retires when the data returns.
                let rec = self.trace[self.next];
                self.next += 1;
                self.outstanding += 1;
                self.load_next_gap();
                Some(CoreRequest {
                    core: self.id,
                    block: rec.op.block,
                    is_write: rec.op.is_write,
                })
            }
        }
    }

    /// Completes one outstanding memory operation: the memory instruction
    /// retires and (if the core was at its limit) execution resumes.
    ///
    /// # Panics
    ///
    /// Panics if no memory operation is outstanding.
    pub fn complete_memory_op(&mut self) {
        assert!(self.outstanding > 0, "core was not waiting");
        self.outstanding -= 1;
        self.instructions_retired += 1;
    }

    /// Whether the core consumed its whole trace **and** every in-flight
    /// miss has completed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.next >= self.trace.len() && self.outstanding == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<TraceRecord> {
        vec![
            TraceRecord::new(20, 100, false),
            TraceRecord::new(0, 200, true),
            TraceRecord::new(5, 300, false),
        ]
    }

    #[test]
    fn gap_paces_the_request() {
        let mut c = Core::new(0, trace());
        // 20-instruction gap at 16 IPC: nothing after 1 cycle.
        assert_eq!(c.tick(16), None);
        let req = c.tick(16).expect("request after gap");
        assert_eq!(req.block, 100);
        assert!(!req.is_write);
        assert_eq!(c.state(), CoreState::Blocked);
    }

    #[test]
    fn blocked_core_waits_and_counts() {
        let mut c = Core::new(0, trace());
        let _ = c.tick(16);
        let _ = c.tick(16).unwrap();
        assert_eq!(c.tick(16), None);
        assert_eq!(c.tick(16), None);
        assert_eq!(c.blocked_cycles(), 2);
        c.complete_memory_op();
        assert_eq!(c.state(), CoreState::Running);
    }

    #[test]
    fn zero_gap_issues_immediately() {
        let mut c = Core::new(1, trace());
        // The 20-instruction gap fits one 32-wide cycle, so the memory op
        // issues in that same cycle.
        let _ = c.tick(32).unwrap();
        c.complete_memory_op();
        // Second record has gap 0: issues on the very next tick.
        let req = c.tick(16).expect("immediate request");
        assert_eq!(req.block, 200);
        assert!(req.is_write);
        assert_eq!(req.core, 1);
    }

    #[test]
    fn trace_exhaustion() {
        let mut c = Core::new(0, trace());
        for _ in 0..3 {
            while c.tick(1000).is_none() {
                assert!(!c.is_done());
            }
            c.complete_memory_op();
        }
        assert!(c.is_done());
        assert_eq!(c.tick(16), None);
        // 20 + 0 + 5 gap instructions + 3 memory instructions.
        assert_eq!(c.instructions_retired(), 28);
        assert_eq!(c.records_consumed(), 3);
    }

    #[test]
    fn empty_trace_is_done_immediately() {
        let c = Core::new(0, Vec::new());
        assert!(c.is_done());
    }

    #[test]
    #[should_panic(expected = "core was not waiting")]
    fn complete_requires_outstanding() {
        let mut c = Core::new(0, trace());
        c.complete_memory_op();
    }

    #[test]
    fn mlp_overlaps_misses() {
        // With MLP 2, the second (gap 0) request issues while the first is
        // still outstanding.
        let mut c = Core::with_mlp(0, trace(), 2);
        let r1 = c.tick(32).expect("first miss");
        assert_eq!(r1.block, 100);
        assert_eq!(c.state(), CoreState::Running, "one slot still free");
        let r2 = c.tick(32).expect("second miss overlaps");
        assert_eq!(r2.block, 200);
        assert_eq!(c.outstanding(), 2);
        assert_eq!(c.state(), CoreState::Blocked);
        // Completions retire in-flight ops and resume execution.
        c.complete_memory_op();
        assert_eq!(c.state(), CoreState::Running);
        c.complete_memory_op();
        assert_eq!(c.outstanding(), 0);
    }

    #[test]
    fn done_waits_for_inflight_drain() {
        let mut c = Core::with_mlp(0, vec![TraceRecord::new(0, 1, false)], 2);
        let _ = c.tick(16).expect("miss");
        assert_eq!(c.state(), CoreState::Done, "trace consumed");
        assert!(!c.is_done(), "in-flight miss still draining");
        c.complete_memory_op();
        assert!(c.is_done());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_mlp_rejected() {
        let _ = Core::with_mlp(0, Vec::new(), 0);
    }
}
