//! # string-oram — the String ORAM framework (HPCA 2021 reproduction)
//!
//! This crate is the top of the reproduction stack for *"Streamline Ring
//! ORAM Accesses through Spatial and Temporal Optimization"* (HPCA 2021).
//! It wires the substrates together into the paper's evaluated system:
//!
//! * [`ring_oram`] — Ring ORAM protocol with the **Compact Bucket (CB)**
//!   spatial optimization and background eviction;
//! * [`mem_sched`] — transaction-based and **Proactive Bank (PB)** DRAM
//!   command scheduling;
//! * [`dram_sim`] — cycle-accurate DDR3 timing;
//! * [`trace_synth`] — MPKI-matched synthetic workloads.
//!
//! The central types are [`SystemConfig`] (Tables I-III of the paper as a
//! value), [`Scheme`] (Baseline / CB / PB / ALL), and [`Simulation`], which
//! runs traces through cores → ORAM controller → memory controller → DRAM
//! and produces a [`SimReport`] carrying every metric the paper's figures
//! plot. The analytic space model for Fig. 4 / Table V lives in [`space`].
//!
//! # Quickstart
//!
//! ```
//! use string_oram::{Simulation, SystemConfig, Scheme};
//! use trace_synth::{TraceGenerator, by_name};
//!
//! let cfg = SystemConfig::test_small(Scheme::All);
//! let traces = (0..cfg.cores)
//!     .map(|c| TraceGenerator::new(by_name("stream").unwrap(), 7, c as u32).take_records(40))
//!     .collect();
//! let mut sim = Simulation::new(cfg, traces);
//! let report = sim.run(10_000_000).expect("completes");
//! println!("{} cycles for {} ORAM accesses", report.total_cycles, report.oram_accesses);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(clippy::redundant_clone)]
#![warn(clippy::large_enum_variant)]
// Library code must surface failures as values or documented panics, never
// as ad-hoc unwraps; tests are free to unwrap (a panic IS the failure).
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod cpu;
pub mod pipeline;
pub mod report;
pub mod space;
pub mod system;

pub use config::{
    BackendKind, ConfigError, FaultConfig, LayoutKind, MappingKind, RecursionSettings, Scheme,
    SystemConfig, VerifyConfig,
};
pub use cpu::{Core, CoreRequest, CoreState};
pub use pipeline::{CacheAligned, ShardedSimulation};
pub use report::{
    GovernorSummary, KindCycles, LatencyPercentiles, ResilienceSummary, RowClassCounts,
    ServiceSummary, SimReport, TenantSummary,
};
pub use ring_oram::{ObliviousProtocol, ProtocolKind};
pub use space::{fig4_rows, table5_rows, SpaceRow};
pub use system::{CycleLimitExceeded, Simulation};
