//! Stage 3 — **Schedule**: memory-backend construction.
//!
//! The pipeline drives memory through [`mem_sched::MemoryBackend`];
//! [`build_backend`] turns [`crate::config::BackendKind`] into the concrete
//! implementation:
//!
//! * [`BackendKind::CycleAccurate`] — `mem-sched`'s FR-FCFS controller
//!   over `dram-sim`'s bank/rank/channel state machines, with the
//!   configured page policy and (optionally) the fault hooks;
//! * [`BackendKind::FastFunctional`] — `mem-sched`'s row-aware latency
//!   model, derived from the same [`dram_sim::timing::TimingParams`] so
//!   hit/miss/conflict costs stay faithful to the device.

use dram_sim::{AddressMapping, DramModule};
use mem_sched::{FunctionalBackend, FunctionalTiming, MemoryBackend, MemoryController};

use crate::config::{BackendKind, MappingKind, SystemConfig};

/// Builds the memory backend `cfg` asks for.
///
/// The address mapping is chosen here too (both backends map addresses the
/// same way, so row classification agrees between them).
#[must_use]
pub fn build_backend(cfg: &SystemConfig) -> Box<dyn MemoryBackend> {
    let mapping = match cfg.mapping {
        MappingKind::PaperStriped => AddressMapping::hpca_default(&cfg.geometry),
        MappingKind::Sequential => AddressMapping::sequential(&cfg.geometry),
    };
    match cfg.backend {
        BackendKind::CycleAccurate => {
            let mut dram = DramModule::new(cfg.geometry.clone(), cfg.timing.clone());
            if let Some(f) = &cfg.faults {
                dram.enable_faults(f.dram);
            }
            let mut ctrl =
                MemoryController::new(dram, mapping, cfg.sched_policy, cfg.queue_capacity);
            ctrl.set_page_policy(cfg.page_policy);
            if let Some(f) = &cfg.faults {
                ctrl.enable_response_faults(f.memctrl);
            }
            Box::new(ctrl)
        }
        BackendKind::FastFunctional => Box::new(FunctionalBackend::new(
            cfg.geometry.clone(),
            mapping,
            FunctionalTiming::from_timing(&cfg.timing),
            cfg.queue_capacity,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    #[test]
    fn backend_kind_selects_implementation() {
        let cfg = SystemConfig::test_small(Scheme::Baseline);
        assert!(build_backend(&cfg).dram_module().is_some());
        let mut fast = cfg;
        fast.backend = BackendKind::FastFunctional;
        assert!(build_backend(&fast).dram_module().is_none());
    }
}
