//! Passive conformance checking, attached beside the pipeline stages.
//!
//! Two independent observation points feed the checkers:
//!
//! * the **command-event stream** from the memory backend, re-validated by
//!   [`sim_verify::StreamConformance`] (transaction-order contract on every
//!   backend, JEDEC shadow timing only when a cycle-accurate DRAM model is
//!   behind the trace);
//! * the **plan stream** from the planner, replayed against the selected
//!   protocol's structural invariants by [`sim_verify::ProtocolAuditor`]
//!   (Ring invariants for Ring+CB / plain Ring, full-path plan shapes and
//!   stash bounds for Path / Circuit).
//!
//! Findings accumulate into one violation log; with
//! [`crate::config::VerifyConfig::fail_fast`] the first finding panics
//! instead (the negative-test hook).

use dram_sim::geometry::DramGeometry;
use dram_sim::timing::TimingParams;
use mem_sched::CommandEvent;
use ring_oram::{AccessPlan, FaultEvent, ProtocolKind, RingConfig};
use sim_verify::{ProtocolAuditor, StreamConformance, Violation};

use crate::config::VerifyConfig;

/// The conformance layer of one simulation: stream checkers plus the ORAM
/// auditor, sharing a violation log.
#[derive(Debug)]
pub struct Conformance {
    stream: StreamConformance,
    auditor: Option<ProtocolAuditor>,
    fail_fast: bool,
    violations: Vec<Violation>,
}

impl Conformance {
    /// Builds the layer for `verify`. `kind` selects the protocol's
    /// invariant auditor and `ring` must be the protocol's *effective*
    /// configuration (see `SystemConfig::effective_ring`) so slot ranges
    /// and plan shapes are sized right. `backend_has_dram` selects which
    /// stream checkers apply: the JEDEC shadow layer needs a cycle-accurate
    /// DRAM model behind the trace, the transaction-order oracle does not.
    /// `sched_policy` labels the policy auditor that replaces the bare
    /// order oracle (same ordering coverage plus the canonical
    /// data-command digest; see [`sim_verify::PolicyAuditor`]).
    #[must_use]
    pub fn new(
        verify: &VerifyConfig,
        kind: ProtocolKind,
        ring: &RingConfig,
        geometry: &DramGeometry,
        timing: &TimingParams,
        backend_has_dram: bool,
        sched_policy: &str,
    ) -> Self {
        let stream = if !verify.shadow_timing {
            StreamConformance::disabled()
        } else if backend_has_dram {
            StreamConformance::cycle_accurate(geometry.clone(), timing.clone())
        } else {
            StreamConformance::order_only()
        }
        .audit_policy(sched_policy);
        Self {
            stream,
            auditor: verify
                .oram_audit
                .then(|| ProtocolAuditor::new(kind, ring.clone())),
            fail_fast: verify.fail_fast,
            violations: Vec::new(),
        }
    }

    /// Whether any stream checker is attached (i.e. whether the backend's
    /// command trace needs draining each cycle).
    #[must_use]
    pub fn stream_enabled(&self) -> bool {
        self.stream.is_enabled()
    }

    /// Feeds one backend command event to the stream checkers.
    pub fn observe_command(&mut self, ev: &CommandEvent) {
        self.stream.observe(ev);
    }

    /// Feeds the protocol's drained fault log to the auditor (retry
    /// allowances must exist before the plans that use them are checked).
    pub fn observe_faults(&mut self, faults: &[FaultEvent]) {
        if let Some(auditor) = &mut self.auditor {
            auditor.observe_faults(faults);
        }
    }

    /// Replays one access's plans against the protocol's invariants.
    pub fn observe_access(&mut self, plans: &[AccessPlan]) {
        if let Some(auditor) = &mut self.auditor {
            auditor.observe_access(plans);
        }
    }

    /// Checks the post-access stash occupancy against its bound.
    pub fn observe_stash(&mut self, stash_len: usize) {
        if let Some(auditor) = &mut self.auditor {
            auditor.observe_stash(stash_len);
        }
    }

    /// Moves fresh checker findings into the violation log; with
    /// `fail_fast` the first finding panics instead.
    ///
    /// # Panics
    ///
    /// Panics on the first finding when built with
    /// [`crate::config::VerifyConfig::fail_fast`].
    pub fn collect(&mut self) {
        let mut fresh = self.stream.take_violations();
        if let Some(auditor) = &mut self.auditor {
            fresh.extend(auditor.take_violations());
        }
        if self.fail_fast {
            if let Some(v) = fresh.first() {
                panic!("conformance violation: {v}");
            }
        }
        self.violations.extend(fresh);
    }

    /// Every violation found so far.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The scheduling-policy auditor, when the stream checkers are enabled
    /// (its canonical digest proves policies observably equivalent).
    #[must_use]
    pub fn policy_auditor(&self) -> Option<&sim_verify::PolicyAuditor> {
        self.stream.policy_auditor()
    }
}
