//! Stage 5 — **Attribute** — plus measurement windows and report assembly.
//!
//! [`Metrics`] owns the per-cycle attribution counters; [`CounterSnapshot`]
//! freezes *every* counter in the system (pipeline, backend, protocol) into
//! one value, so a measurement window is simply `now.delta(&start)` — the
//! single subtraction path both `begin_measurement` and whole-run reports
//! share. [`build_report`] turns one (possibly windowed) snapshot into a
//! [`SimReport`].

use std::collections::BTreeMap;

use dram_sim::power::{EnergyBreakdown, PowerParams};
use mem_sched::{BackendSnapshot, RowClass};
use ring_oram::{OpKind, ProtocolStats};

use crate::config::SystemConfig;
use crate::report::{KindCycles, LatencyPercentiles, ResilienceSummary, RowClassCounts, SimReport};

/// Every [`OpKind`], in the order of the per-kind counter array.
const OP_KINDS: [OpKind; 5] = [
    OpKind::ReadPath,
    OpKind::DummyReadPath,
    OpKind::Eviction,
    OpKind::EarlyReshuffle,
    OpKind::RetryRead,
];

/// Index of `kind` in [`OP_KINDS`].
fn kind_idx(kind: OpKind) -> usize {
    match kind {
        OpKind::ReadPath => 0,
        OpKind::DummyReadPath => 1,
        OpKind::Eviction => 2,
        OpKind::EarlyReshuffle => 3,
        OpKind::RetryRead => 4,
    }
}

/// The attribution counters the pipeline updates every cycle.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Cycle attribution by the oldest unfinished transaction's kind.
    pub cycles_by_kind: KindCycles,
    /// Row-buffer outcomes per operation kind, indexed by [`kind_idx`].
    /// Array-backed because one count folds in per completed request — a
    /// keyed map here costs a lookup on the hottest per-request path;
    /// [`Metrics::row_class_map`] materializes the report view on demand.
    row_class: [RowClassCounts; OP_KINDS.len()],
    /// Cycles during which the oldest in-flight transaction was a fault
    /// retry (the latency cost of recovery, reported separately).
    pub retry_cycles: u64,
    /// Completion latency of every program read path, in cycles from plan
    /// to data availability (for the latency percentiles in the report).
    pub read_latencies: Vec<u64>,
}

impl Metrics {
    /// Empty counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges one cycle to `oldest` (the oldest unfinished transaction's
    /// kind; `None` = nothing in flight).
    pub fn attribute(&mut self, oldest: Option<OpKind>) {
        self.cycles_by_kind.add(oldest);
        if oldest == Some(OpKind::RetryRead) {
            self.retry_cycles += 1;
        }
    }

    /// Folds one completed request's row-buffer outcome into its kind's
    /// counts.
    pub fn record_class(&mut self, kind: OpKind, class: RowClass) {
        self.row_class[kind_idx(kind)].add(class);
    }

    /// The row-buffer outcomes per kind label, for snapshots and reports.
    /// Kinds that never completed a request are omitted (matching the
    /// lazily-populated map this view replaces).
    #[must_use]
    pub fn row_class_map(&self) -> BTreeMap<&'static str, RowClassCounts> {
        OP_KINDS
            .iter()
            .map(|&k| (k.label(), self.row_class[kind_idx(k)]))
            .filter(|(_, v)| v.total() > 0)
            .collect()
    }
}

/// A frozen copy of every counter in the system at one cycle: pipeline
/// attribution, transaction counts, protocol statistics and the full
/// [`BackendSnapshot`]. Both the measurement-window start and report
/// assembly use this one type; the window is [`CounterSnapshot::delta`].
#[derive(Debug, Clone)]
pub struct CounterSnapshot {
    /// Memory-bus cycles elapsed (after `delta`: window length).
    pub cycle: u64,
    /// Instructions retired across cores.
    pub instructions: u64,
    /// Program accesses planned.
    pub oram_accesses: u64,
    /// Cycle attribution by kind.
    pub cycles_by_kind: KindCycles,
    /// Transactions admitted, by kind label.
    pub transactions_by_kind: BTreeMap<&'static str, u64>,
    /// Row-buffer outcomes per kind.
    pub row_class_by_kind: BTreeMap<&'static str, RowClassCounts>,
    /// Retry-attributed cycles.
    pub retry_cycles: u64,
    /// Number of read-latency samples recorded so far (after `delta`: the
    /// window's first sample index — the samples themselves stay in
    /// [`Metrics::read_latencies`]).
    pub read_latency_idx: usize,
    /// Every backend counter (scheduler + optional DRAM).
    pub backend: BackendSnapshot,
    /// Protocol statistics of the data ORAM.
    pub protocol: ProtocolStats,
}

impl CounterSnapshot {
    /// Counter-wise difference `self - start`: the measurement window from
    /// `start` to `self`. `start` must be an earlier snapshot of the same
    /// simulation. `read_latency_idx` keeps `start`'s value (the window's
    /// slice origin).
    #[must_use]
    pub fn delta(&self, start: &Self) -> Self {
        let mut transactions_by_kind = self.transactions_by_kind.clone();
        for (k, v) in &start.transactions_by_kind {
            *transactions_by_kind.entry(k).or_default() -= v;
        }
        let mut row_class_by_kind = self.row_class_by_kind.clone();
        for (k, v) in &start.row_class_by_kind {
            let e = row_class_by_kind.entry(k).or_default();
            *e = e.delta(v);
        }
        Self {
            cycle: self.cycle - start.cycle,
            instructions: self.instructions - start.instructions,
            oram_accesses: self.oram_accesses - start.oram_accesses,
            cycles_by_kind: self.cycles_by_kind.delta(&start.cycles_by_kind),
            transactions_by_kind,
            row_class_by_kind,
            retry_cycles: self.retry_cycles - start.retry_cycles,
            read_latency_idx: start.read_latency_idx,
            backend: self.backend.delta(&start.backend),
            protocol: self.protocol.delta(&start.protocol),
        }
    }
}

/// Assembles the [`SimReport`] for one (possibly windowed) snapshot.
/// `latencies` is the window's slice of read-latency samples; `violations`
/// the rendered conformance findings. DRAM-level metrics (bank idleness,
/// energy, refresh counters) are zero when the backend has no DRAM model.
#[must_use]
pub fn build_report(
    cfg: &SystemConfig,
    label: String,
    window: &CounterSnapshot,
    latencies: &[u64],
    violations: Vec<String>,
) -> SimReport {
    let sched = &window.backend.sched;
    let elapsed = window.cycle;
    let (bank_idle, energy, refresh_storms, weak_row_stalls) = match &window.backend.dram {
        Some(d) => (
            d.average_bank_idle_proportion(elapsed),
            dram_sim::power::energy(
                &PowerParams::ddr3_1600(),
                &d.timing,
                &d.stats,
                cfg.geometry.channels * cfg.geometry.ranks_per_channel,
                elapsed,
                sched.open_bank_fraction(),
                d.refreshes,
            ),
            d.refresh_storms,
            d.weak_row_stalls,
        ),
        None => (
            0.0,
            EnergyBreakdown {
                activate_uj: 0.0,
                read_uj: 0.0,
                write_uj: 0.0,
                background_uj: 0.0,
                refresh_uj: 0.0,
            },
            0,
            0,
        ),
    };
    let protocol = window.protocol.clone();
    let resilience = ResilienceSummary {
        faults_injected: protocol.faults_injected,
        faults_detected: protocol.faults_detected,
        fault_retries: protocol.fault_retries,
        faults_recovered: protocol.faults_recovered,
        faults_unrecovered: protocol.faults_unrecovered,
        degraded_entries: protocol.degraded_entries,
        degraded_exits: protocol.degraded_exits,
        background_escalations: protocol.background_escalations,
        retry_cycles: window.retry_cycles,
        responses_delayed: sched.responses_delayed,
        responses_dropped: sched.responses_dropped,
        queue_saturation_windows: sched.queue_saturation_windows,
        refresh_storms,
        weak_row_stalls,
    };
    SimReport {
        label,
        policy_name: cfg.sched_policy.name().to_string(),
        shards: 1,
        total_cycles: elapsed,
        makespan_cycles: elapsed,
        cycles_by_kind: window.cycles_by_kind,
        instructions: window.instructions,
        oram_accesses: window.oram_accesses,
        transactions_by_kind: window.transactions_by_kind.clone(),
        row_class_by_kind: window.row_class_by_kind.clone(),
        mean_read_queue_wait: sched.mean_read_queue_wait(),
        mean_write_queue_wait: sched.mean_write_queue_wait(),
        mean_queue_occupancy: sched.mean_queue_occupancy(),
        bank_idle_proportion: bank_idle,
        pending_bank_idle_proportion: sched.pending_bank_idle_proportion(),
        early_precharge_fraction: sched.early_precharge_fraction(),
        early_activate_fraction: sched.early_activate_fraction(),
        deferred_writes: sched.deferred_writes,
        withheld_issue_slots: sched.withheld_issue_slots,
        protocol,
        resilience,
        requests_completed: sched.reads_completed + sched.writes_completed,
        channel_imbalance: sched.channel_imbalance(),
        read_latency: LatencyPercentiles::from_samples(latencies),
        violations,
        energy,
        service: None,
    }
}

/// Folds per-shard whole-run snapshots (shard-id order) into one merged
/// snapshot: every counter sums; the backend and protocol layers merge via
/// their own disjoint-instance folds. Shared by [`ShardedSimulation`]'s
/// merged report and the `oram-service` front-end's sharded engine.
///
/// [`ShardedSimulation`]: crate::ShardedSimulation
///
/// # Panics
///
/// Panics on an empty slice (a sharded engine always has ≥ 1 shard).
#[must_use]
pub fn merge_snapshots(snaps: &[CounterSnapshot]) -> CounterSnapshot {
    let mut acc = snaps[0].clone();
    acc.read_latency_idx = 0;
    for s in &snaps[1..] {
        acc.cycle += s.cycle;
        acc.instructions += s.instructions;
        acc.oram_accesses += s.oram_accesses;
        acc.cycles_by_kind.read += s.cycles_by_kind.read;
        acc.cycles_by_kind.evict += s.cycles_by_kind.evict;
        acc.cycles_by_kind.reshuffle += s.cycles_by_kind.reshuffle;
        acc.cycles_by_kind.other += s.cycles_by_kind.other;
        for (k, v) in &s.transactions_by_kind {
            *acc.transactions_by_kind.entry(k).or_default() += v;
        }
        for (k, v) in &s.row_class_by_kind {
            let e = acc.row_class_by_kind.entry(k).or_default();
            e.hits += v.hits;
            e.misses += v.misses;
            e.conflicts += v.conflicts;
        }
        acc.retry_cycles += s.retry_cycles;
        acc.backend.merge_from(&s.backend);
        acc.protocol.merge_from(&s.protocol);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_buckets_and_retry_cycles() {
        let mut m = Metrics::new();
        m.attribute(Some(OpKind::ReadPath));
        m.attribute(Some(OpKind::RetryRead));
        m.attribute(None);
        assert_eq!(m.cycles_by_kind.read, 1);
        assert_eq!(m.cycles_by_kind.other, 2);
        assert_eq!(m.retry_cycles, 1);
    }

    #[test]
    fn record_class_folds_by_kind_label() {
        let mut m = Metrics::new();
        m.record_class(OpKind::ReadPath, RowClass::Conflict);
        m.record_class(OpKind::ReadPath, RowClass::Hit);
        m.record_class(OpKind::Eviction, RowClass::Miss);
        let map = m.row_class_map();
        assert_eq!(map["read"].total(), 2);
        assert_eq!(map["read"].conflicts, 1);
        assert_eq!(map["evict"].misses, 1);
        assert!(!map.contains_key("dummy-read"), "unseen kinds omitted");
    }
}
