//! The staged transaction pipeline behind [`crate::Simulation`].
//!
//! Every simulated memory-bus cycle flows through five explicit stages,
//! each owned by one component:
//!
//! 1. **Plan** ([`Planner`]) — expand core LLC misses into ORAM
//!    transactions via the protocol engine, lowering slot touches to
//!    physical addresses through the tree layout;
//! 2. **Enqueue** ([`TxnTracker`]) — feed planned requests to the memory
//!    backend in strict transaction order, stalling on queue pressure;
//! 3. **Schedule** ([`mem_sched::MemoryBackend`]) — the pluggable memory
//!    model ticks, issues commands and completes requests (built by
//!    [`build_backend`] from [`crate::config::BackendKind`]);
//! 4. **Retire** ([`TxnTracker`]) — fold completions back into transaction
//!    state and compute core wake-ups;
//! 5. **Attribute** ([`Metrics`]) — charge the cycle to the oldest
//!    unfinished transaction and fold row-class / latency samples.
//!
//! Two concerns sit beside the stages rather than inside them:
//! conformance checking ([`Conformance`]) attaches to the backend-agnostic
//! command-event stream plus the protocol's plan stream, and measurement
//! windows are plain [`CounterSnapshot`] deltas over every counter the
//! stages and the backend expose.
//!
//! The pipeline is backend-independent by construction: the plan and
//! transaction layers never look at timing, so the cycle-accurate and fast
//! functional backends observe the *same* access sequence (pinned by the
//! `backend_differential` integration test via [`Planner`]'s access
//! digest).

pub mod backend;
pub mod conformance;
pub mod metrics;
pub mod planner;
pub mod shard;
pub mod txns;

pub use backend::build_backend;
pub use conformance::Conformance;
pub use metrics::{build_report, merge_snapshots, CounterSnapshot, Metrics};
pub use planner::{PlannedTxn, Planner};
pub use shard::{CacheAligned, ShardedSimulation};
pub use txns::{Retired, TxnTracker, Wake};
