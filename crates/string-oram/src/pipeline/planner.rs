//! Stage 1 — **Plan**: expand core LLC misses into ORAM transactions.
//!
//! The planner owns the protocol engine (a single data ORAM, or a
//! recursive stack with per-ORAM memory regions) and the tree layout(s).
//! Each [`CoreRequest`] becomes a sequence of [`PlannedTxn`]s: the
//! protocol's slot touches lowered to physical addresses, annotated with
//! which request (if any) carries the waiting core's data.
//!
//! The planner also folds every planned request into a running FNV-1a
//! **access digest**. The digest covers exactly what an adversary on the
//! memory bus observes — transaction kinds, physical addresses and
//! directions, in order — and none of what they don't (timing). Two
//! backends driving the same trace must therefore produce identical
//! digests; the `backend_differential` test pins this.

use dram_sim::PhysAddr;
use ring_oram::layout::{NaiveLayout, SubtreeLayout, TreeLayout};
use ring_oram::recursive::{RecursiveConfig, RecursiveOram};
use ring_oram::{
    AccessPlan, BlockId, CircuitOram, ObliviousProtocol, OpKind, PathOram, ProtocolKind, RingOram,
};

use crate::config::{ConfigError, LayoutKind, SystemConfig};
use crate::cpu::CoreRequest;
use crate::pipeline::conformance::Conformance;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One ORAM transaction, lowered and ready for admission: physical
/// requests in issue order plus the core-wakeup annotations.
#[derive(Debug, Clone)]
pub struct PlannedTxn {
    /// The operation kind (read path, eviction, ...).
    pub kind: OpKind,
    /// Physical requests `(address, is_write)` in issue order.
    pub requests: Vec<(PhysAddr, bool)>,
    /// Index into `requests` of the target fetch the program waits on,
    /// when this transaction serves a program read from the tree.
    pub target_index: Option<usize>,
    /// Core whose LLC miss this transaction serves, if any.
    pub waiting_core: Option<usize>,
    /// Whether the waiting core is released at transaction completion
    /// rather than at the target fetch (stash / tree-top / first-touch
    /// hits: the data never travels on the bus).
    pub release_on_completion: bool,
}

/// The protocol engine driving the simulation: a single data ORAM behind
/// the [`ObliviousProtocol`] trait (any of the four protocol design
/// points) or a recursive Ring stack with per-ORAM memory regions.
#[derive(Debug)]
enum Engine {
    Flat {
        oram: Box<dyn ObliviousProtocol>,
        layout: Box<dyn TreeLayout>,
    },
    Recursive {
        stack: Box<RecursiveOram>,
        /// Per-stack-index layout and base address (disjoint regions).
        regions: Vec<(Box<dyn TreeLayout>, u64)>,
    },
}

/// The planning stage: protocol engine + layout lowering + access digest.
#[derive(Debug)]
pub struct Planner {
    engine: Engine,
    accesses: u64,
    cover_accesses: u64,
    digest: u64,
    /// Pool of request buffers for [`PlannedTxn`]s. Buffers flow out with
    /// the planned transactions and return via [`Self::recycle_requests`]
    /// once the tracker has admitted them, so steady-state planning
    /// allocates nothing.
    req_pool: Vec<Vec<(PhysAddr, bool)>>,
}

impl Planner {
    /// Builds the planner for `cfg`: constructs the protocol engine (with
    /// encryption/resilience when faults are configured) and, under
    /// recursion, allocates disjoint row-set-aligned memory regions for
    /// every ORAM in the stack.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Invalid`] when the recursive stack does not fit the
    /// DRAM module (`cfg` itself is assumed pre-validated).
    pub fn build(cfg: &SystemConfig) -> Result<Self, ConfigError> {
        let mk_layout = |ring: &ring_oram::RingConfig| -> Box<dyn TreeLayout> {
            match cfg.layout {
                LayoutKind::Subtree => Box::new(SubtreeLayout::new(ring, cfg.row_set_bytes())),
                LayoutKind::Naive => Box::new(NaiveLayout::new(ring)),
            }
        };
        // Every engine runs on the protocol's *effective* ring parameters
        // (`ring == cfg.ring` for the paper's Ring+CB design point, so the
        // existing pipeline is bit-identical).
        let ring = cfg.effective_ring();
        let engine = match cfg.recursion {
            None => {
                let oram: Box<dyn ObliviousProtocol> = match cfg.protocol {
                    ProtocolKind::RingCb | ProtocolKind::Ring => {
                        let mut oram = Box::new(RingOram::with_load_factor(
                            ring.clone(),
                            cfg.seed,
                            cfg.load_factor,
                        ));
                        if let Some(f) = &cfg.faults {
                            // Integrity-fault detection needs the
                            // authenticated cipher in the loop.
                            oram.enable_encryption(cfg.seed ^ 0xC1F3);
                            oram.enable_resilience(f.resilience);
                        }
                        oram
                    }
                    ProtocolKind::Path => Box::new(PathOram::from_ring(ring.clone(), cfg.seed)),
                    ProtocolKind::Circuit => Box::new(CircuitOram::new(ring.clone(), cfg.seed)),
                };
                Engine::Flat {
                    oram,
                    layout: mk_layout(&ring),
                }
            }
            Some(r) => {
                let rec_cfg = RecursiveConfig {
                    data: ring.clone(),
                    tracked_blocks: r.tracked_blocks,
                    positions_per_block: r.positions_per_block,
                    max_onchip_entries: r.max_onchip_entries,
                };
                let stack = Box::new(RecursiveOram::new(rec_cfg.clone(), cfg.seed));
                // Allocate disjoint, row-set-aligned regions: data ORAM at
                // 0, each map ORAM after the previous region.
                let mut regions: Vec<(Box<dyn TreeLayout>, u64)> = Vec::new();
                let align = cfg.row_set_bytes();
                let mut base = 0u64;
                let push =
                    |ring: &ring_oram::RingConfig,
                     base: &mut u64,
                     regions: &mut Vec<(Box<dyn TreeLayout>, u64)>| {
                        let l = mk_layout(ring);
                        let total = l.total_bytes().div_ceil(align) * align;
                        regions.push((l, *base));
                        *base += total;
                    };
                push(&ring, &mut base, &mut regions);
                for i in 0..rec_cfg.map_levels() {
                    push(&rec_cfg.map_config(i), &mut base, &mut regions);
                }
                if base > cfg.geometry.capacity_bytes() {
                    return Err(ConfigError::Invalid(format!(
                        "recursive ORAM stack ({base} B) exceeds DRAM capacity"
                    )));
                }
                Engine::Recursive { stack, regions }
            }
        };
        Ok(Self {
            engine,
            accesses: 0,
            cover_accesses: 0,
            digest: FNV_OFFSET,
            req_pool: Vec::new(),
        })
    }

    /// The (data) protocol engine, for inspection in tests and harnesses.
    #[must_use]
    pub fn protocol(&self) -> &dyn ObliviousProtocol {
        match &self.engine {
            Engine::Flat { oram, .. } => oram.as_ref(),
            Engine::Recursive { stack, .. } => stack.oram(0),
        }
    }

    /// The data engine as a [`RingOram`], for Ring-specific inspection
    /// (CB counters, fault layer). Prefer [`Self::protocol`] in
    /// protocol-agnostic code.
    ///
    /// # Panics
    ///
    /// Panics when the configured protocol is not Ring-based — use
    /// [`Self::protocol`] there.
    #[must_use]
    #[allow(clippy::expect_used)] // invariant, stated in the expect message
    pub fn data_oram(&self) -> &RingOram {
        self.protocol()
            .as_ring()
            .expect("data_oram: the configured protocol is not Ring-based; use protocol()")
    }

    /// Program accesses planned so far.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Cover (padding) accesses planned so far via
    /// [`Self::plan_cover_into`]. Not counted in [`Self::accesses`]: cover
    /// traffic serves no program request.
    #[must_use]
    pub fn cover_accesses(&self) -> u64 {
        self.cover_accesses
    }

    /// FNV-1a digest of every planned transaction so far: kinds, physical
    /// addresses and directions, in order (the bus-observable sequence).
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Expands one core request into lowered transactions. Under recursion
    /// the position-map ORAM accesses precede the data access; only the
    /// data ORAM's read path carries the core's wakeup.
    pub fn plan(&mut self, req: &CoreRequest, conformance: &mut Conformance) -> Vec<PlannedTxn> {
        let mut out = Vec::new();
        self.plan_into(req, conformance, &mut out);
        out
    }

    /// Allocation-free form of [`Self::plan`]: appends the lowered
    /// transactions to a caller-provided (reusable) buffer. The protocol
    /// outcome's buffers are recycled back into the engine's pools and the
    /// request buffers come from [`Self::recycle_requests`]'s pool, so a
    /// warm planner performs no heap allocation per access on the flat
    /// (non-recursive) engine.
    pub fn plan_into(
        &mut self,
        req: &CoreRequest,
        conformance: &mut Conformance,
        out: &mut Vec<PlannedTxn>,
    ) {
        self.accesses += 1;
        self.mix(req.block);
        match &mut self.engine {
            Engine::Flat { oram, layout } => {
                let outcome = oram.access(BlockId(req.block));
                let served_from_tree = outcome.served_from_tree();
                // Drain the fault log unconditionally (bounds protocol-side
                // memory); the auditor replays it before the plans so retry
                // allowances exist when the plans are checked.
                let faults = oram.take_fault_events();
                conformance.observe_faults(&faults);
                conformance.observe_access(&outcome.plans);
                conformance.observe_stash(oram.stash_len());
                // The core's data arrives with the *last* plan carrying a
                // target touch: normally the read path, but a corrupted
                // target fetch is only whole after its retry plan.
                let wake_idx = outcome.wake_plan_index();
                let mut digest = self.digest;
                for (i, plan) in outcome.plans.iter().enumerate() {
                    let waiting = (Some(i) == wake_idx).then_some((req.core, served_from_tree));
                    let buf = self.req_pool.pop().unwrap_or_default();
                    out.push(lower(&mut digest, plan, layout.as_ref(), 0, waiting, buf));
                }
                self.digest = digest;
                oram.recycle_outcome(outcome);
            }
            Engine::Recursive { stack, regions } => {
                let steps = stack.access(BlockId(req.block));
                let stash_len = stack.oram(0).stash_len();
                for step in &steps {
                    let waiting =
                        (step.oram_index == 0).then(|| (req.core, step.outcome.served_from_tree()));
                    // Only the data ORAM (index 0) is audited; the map
                    // ORAMs run the same protocol with their own configs.
                    if step.oram_index == 0 {
                        conformance.observe_access(&step.outcome.plans);
                    }
                    let (layout, base) = &regions[step.oram_index];
                    for plan in &step.outcome.plans {
                        let buf = self.req_pool.pop().unwrap_or_default();
                        out.push(lower(
                            &mut self.digest,
                            plan,
                            layout.as_ref(),
                            *base,
                            waiting,
                            buf,
                        ));
                    }
                }
                conformance.observe_stash(stash_len);
            }
        }
    }

    /// Expands one **cover access** (protocol-level padding that serves no
    /// program request) into lowered transactions, exactly as
    /// [`Self::plan_into`] does for program accesses: the plans flow
    /// through conformance checking and the access digest, so padded and
    /// unpadded runs stay auditable by the same machinery. The digest mixes
    /// the sentinel block id `u64::MAX` (outside the addressable space)
    /// where a program access mixes its block.
    ///
    /// Returns `false` — planning nothing — when the engine has no native
    /// dummy-access mechanism (non-Ring protocols, recursive stacks);
    /// callers must then reject padded submission modes up front.
    pub fn plan_cover_into(
        &mut self,
        conformance: &mut Conformance,
        out: &mut Vec<PlannedTxn>,
    ) -> bool {
        match &mut self.engine {
            Engine::Flat { oram, layout } => {
                let Some(outcome) = oram.cover_access() else {
                    return false;
                };
                self.cover_accesses += 1;
                self.digest = fnv1a_u64(self.digest, u64::MAX);
                let faults = oram.take_fault_events();
                conformance.observe_faults(&faults);
                conformance.observe_access(&outcome.plans);
                conformance.observe_stash(oram.stash_len());
                let mut digest = self.digest;
                for plan in outcome.plans.iter() {
                    let buf = self.req_pool.pop().unwrap_or_default();
                    out.push(lower(&mut digest, plan, layout.as_ref(), 0, None, buf));
                }
                self.digest = digest;
                oram.recycle_outcome(outcome);
                true
            }
            Engine::Recursive { .. } => false,
        }
    }

    /// Returns a lowered transaction's request buffer to the planner's
    /// pool. The tracker hands buffers back right after admission (it
    /// copies the requests into its own fixed queues), closing the
    /// allocation loop on the hot path.
    pub fn recycle_requests(&mut self, mut buf: Vec<(PhysAddr, bool)>) {
        buf.clear();
        self.req_pool.push(buf);
    }

    /// Pre-sizes protocol bookkeeping for `n` further program accesses
    /// (flat engine only; the recursive stack is not on the
    /// allocation-free path).
    pub fn reserve_accesses(&mut self, n: usize) {
        if let Engine::Flat { oram, .. } = &mut self.engine {
            oram.reserve_accesses(n);
        }
    }

    fn mix(&mut self, v: u64) {
        self.digest = fnv1a_u64(self.digest, v);
    }
}

/// Lowers one protocol plan: converts slot touches to physical requests in
/// the right memory region and resolves the core-wakeup annotations.
/// `waiting` is `(core, served_from_tree)` when this plan may carry the
/// program's data.
fn lower(
    digest: &mut u64,
    plan: &AccessPlan,
    layout: &dyn TreeLayout,
    base: u64,
    waiting: Option<(usize, bool)>,
    mut requests: Vec<(PhysAddr, bool)>,
) -> PlannedTxn {
    let (waiting_core, release_on_completion) = match waiting {
        Some((core, served_from_tree))
            if matches!(plan.kind, OpKind::ReadPath | OpKind::RetryRead) =>
        {
            (
                Some(core),
                !(served_from_tree && plan.target_index.is_some()),
            )
        }
        _ => (None, false),
    };
    requests.clear();
    requests.extend(
        plan.touches
            .iter()
            .map(|t| (PhysAddr(base + layout.addr_of(t.bucket, t.slot)), t.write)),
    );
    let target_index = if waiting_core.is_some() {
        plan.target_index
    } else {
        None
    };
    let mut h = *digest;
    for &b in plan.kind.label().as_bytes() {
        h = fnv1a_byte(h, b);
    }
    h = fnv1a_u64(h, target_index.map_or(u64::MAX, |i| i as u64));
    for &(addr, is_write) in &requests {
        h = fnv1a_u64(h, addr.0);
        h = fnv1a_byte(h, u8::from(is_write));
    }
    *digest = h;
    PlannedTxn {
        kind: plan.kind,
        requests,
        target_index,
        waiting_core,
        release_on_completion,
    }
}

fn fnv1a_byte(h: u64, b: u8) -> u64 {
    (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
}

fn fnv1a_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = fnv1a_byte(h, b);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Scheme, VerifyConfig};

    fn planner_pair() -> (Planner, Conformance) {
        let cfg = SystemConfig::test_small(Scheme::All);
        let conf = Conformance::new(
            &VerifyConfig::off(),
            cfg.protocol,
            &cfg.effective_ring(),
            &cfg.geometry,
            &cfg.timing,
            true,
            cfg.sched_policy.name(),
        );
        (Planner::build(&cfg).unwrap(), conf)
    }

    #[test]
    fn digest_is_deterministic_and_order_sensitive() {
        let (mut a, mut ca) = planner_pair();
        let (mut b, mut cb) = planner_pair();
        for blk in [3u64, 9, 3, 27] {
            a.plan(
                &CoreRequest {
                    core: 0,
                    block: blk,
                    is_write: false,
                },
                &mut ca,
            );
        }
        for blk in [3u64, 9, 3, 27] {
            b.plan(
                &CoreRequest {
                    core: 0,
                    block: blk,
                    is_write: false,
                },
                &mut cb,
            );
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.accesses(), 4);

        let (mut c, mut cc) = planner_pair();
        for blk in [9u64, 3, 3, 27] {
            c.plan(
                &CoreRequest {
                    core: 0,
                    block: blk,
                    is_write: false,
                },
                &mut cc,
            );
        }
        assert_ne!(a.digest(), c.digest(), "order must matter");
    }

    #[test]
    fn cover_accesses_lower_and_digest_without_wakeups() {
        let (mut p, mut conf) = planner_pair();
        let before = p.digest();
        let mut out = Vec::new();
        assert!(p.plan_cover_into(&mut conf, &mut out));
        assert!(!out.is_empty());
        assert!(out.iter().all(|t| t.waiting_core.is_none()));
        assert!(out.iter().all(|t| t.target_index.is_none()));
        assert_eq!(p.cover_accesses(), 1);
        assert_eq!(p.accesses(), 0, "cover traffic is not a program access");
        assert_ne!(p.digest(), before, "cover plans are digest-visible");
        assert!(conf.violations().is_empty());
    }

    #[test]
    fn program_read_carries_exactly_one_wakeup() {
        let (mut p, mut conf) = planner_pair();
        let planned = p.plan(
            &CoreRequest {
                core: 1,
                block: 42,
                is_write: false,
            },
            &mut conf,
        );
        assert!(!planned.is_empty());
        let waits: Vec<_> = planned
            .iter()
            .filter(|t| t.waiting_core.is_some())
            .collect();
        assert_eq!(waits.len(), 1);
        assert_eq!(waits[0].waiting_core, Some(1));
        assert!(matches!(
            waits[0].kind,
            OpKind::ReadPath | OpKind::RetryRead
        ));
    }
}
