//! The sharded parallel simulation engine with deterministic merge.
//!
//! [`ShardedSimulation`] partitions the block address space into `N`
//! independent shard instances (a subtree forest; see
//! [`ring_oram::sharding`]), each owning its own five-stage pipeline,
//! [`mem_sched::MemoryBackend`] and seeded `oram-rng` stream, and runs them
//! on dedicated `std::thread`s. Everything observable is merged back
//! **deterministically**:
//!
//! * results are joined and combined in **shard-id order**, never arrival
//!   order, so thread interleaving cannot change the merged report;
//! * every per-shard seed is derived from the master seed with
//!   [`oram_rng::derive_stream_seed`]`(master, shard_id)` — except for
//!   `N = 1`, which passes the master seed through unchanged so the sharded
//!   engine is *bit-identical* to the unsharded [`Simulation`];
//! * the merged access digest is an order-independent fold of the per-shard
//!   FNV digests: `XOR` over `digest_s.rotate_left(s)` (the rotation keeps
//!   the fold sensitive to which shard produced which digest, the `XOR`
//!   keeps it independent of combination order);
//! * merged counters are exact sums of per-shard counters (means are
//!   recomputed as ratios of summed numerators and denominators, and
//!   latency percentiles from the pooled raw samples — never averages of
//!   averages).
//!
//! `sim-verify` attaches at both granularities: each shard runs its own
//! stream checkers and ORAM audit per its `VerifyConfig`, and the merge
//! point runs the global cross-shard invariant
//! ([`sim_verify::ShardResidencyAuditor`]): no block resident in two
//! shards, no block resident in the wrong shard.

use oram_rng::derive_stream_seed;
use ring_oram::sharding::ShardMap;
use trace_synth::TraceRecord;

use crate::config::{ConfigError, FaultConfig, SystemConfig};
use crate::pipeline::{build_report, merge_snapshots, CounterSnapshot};
use crate::report::SimReport;
use crate::system::{CycleLimitExceeded, Simulation};

/// Pads its contents to a 128-byte alignment boundary — two cache lines,
/// covering the adjacent-line prefetcher on common x86 parts — so values
/// stored side by side in a `Vec` never share a cache line.
///
/// The sharded engine stores each shard pipeline in one of these slots:
/// shard worker threads hammer their own pipeline's hot counters every
/// simulated cycle, and false sharing across slot boundaries would charge
/// every shard's writes to its neighbours' cache lines. The wrapper is
/// transparent via `Deref`/`DerefMut`, so shard accessors still read as
/// `Simulation` method calls.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CacheAligned<T>(pub T);

impl<T> std::ops::Deref for CacheAligned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CacheAligned<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// `N` independent shard pipelines plus the deterministic merge stage.
///
/// # Examples
///
/// ```
/// use string_oram::{ShardedSimulation, SystemConfig, Scheme};
/// use trace_synth::{TraceGenerator, by_name};
///
/// let mut cfg = SystemConfig::test_small(Scheme::All);
/// cfg.shards = 2;
/// let traces = (0..cfg.cores)
///     .map(|c| TraceGenerator::new(by_name("black").unwrap(), 1, c as u32).take_records(50))
///     .collect();
/// let mut sim = ShardedSimulation::new(cfg, traces);
/// let report = sim.run(10_000_000).unwrap();
/// assert_eq!(report.shards, 2);
/// assert_eq!(report.oram_accesses, 100);
/// ```
#[derive(Debug)]
pub struct ShardedSimulation {
    /// The master configuration (`cfg.shards = N`).
    cfg: SystemConfig,
    map: ShardMap,
    /// One single-instance pipeline per shard, in shard-id order, each in
    /// its own cache-line-aligned slot (see [`CacheAligned`]).
    shards: Vec<CacheAligned<Simulation>>,
    label: String,
}

impl ShardedSimulation {
    /// Builds a sharded simulation of `cfg` (with `cfg.shards` instances)
    /// running one trace per core.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation or the number of traces does not
    /// match `cfg.cores` (see [`Self::try_new`]).
    #[must_use]
    pub fn new(cfg: SystemConfig, traces: Vec<Vec<TraceRecord>>) -> Self {
        match Self::try_new(cfg, traces) {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a sharded simulation, reporting configuration problems
    /// instead of panicking.
    ///
    /// With `cfg.shards == 1` the single shard is configured *identically*
    /// to [`Simulation::try_new`] — same seed, same tree, same traces — so
    /// digests and reports are bit-identical to the unsharded pipeline.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Invalid`] if `cfg` fails validation (including the
    /// shard-count and per-shard tree-depth checks) and
    /// [`ConfigError::TraceCount`] if the number of traces does not match
    /// `cfg.cores`.
    pub fn try_new(cfg: SystemConfig, traces: Vec<Vec<TraceRecord>>) -> Result<Self, ConfigError> {
        Self::try_new_with_shard_faults(cfg, traces, &[])
    }

    /// [`Self::try_new`] with per-shard fault-injection overrides:
    /// `fault_overrides[s]`, when `Some`, replaces `cfg.faults` for shard
    /// `s` (missing entries fall back to `cfg.faults`). This is how a test
    /// seeds faults into exactly one shard while the others run clean.
    ///
    /// Shard pipelines are constructed on worker threads, one per shard:
    /// construction initializes position maps and backend state, which at
    /// tens of thousands of blocks per shard is real setup work that scales
    /// with `N` if done serially. Results are joined in shard-id order and
    /// each shard's configuration (seed derivation, trace partition, fault
    /// override) is fixed before any thread starts, so parallel
    /// construction is deterministic: it builds bit-identical shards to the
    /// old serial loop, and on failure reports the lowest-id shard's error.
    /// `N = 1` constructs inline (nothing to overlap).
    ///
    /// # Errors
    ///
    /// As [`Self::try_new`]; an override that fails the per-shard fault
    /// validation is also [`ConfigError::Invalid`].
    ///
    /// # Panics
    ///
    /// Re-raises any panic from a shard construction thread.
    pub fn try_new_with_shard_faults(
        cfg: SystemConfig,
        traces: Vec<Vec<TraceRecord>>,
        fault_overrides: &[Option<FaultConfig>],
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        if traces.len() != cfg.cores {
            return Err(ConfigError::TraceCount {
                expected: cfg.cores,
                got: traces.len(),
            });
        }
        let map = ShardMap::new(cfg.shards).map_err(ConfigError::Invalid)?;
        let shard_ring = map
            .shard_ring_config(&cfg.ring)
            .map_err(ConfigError::Invalid)?;
        let shard_traces = partition_traces(&map, &traces);
        // Fix every shard's full configuration up front so the parallel
        // build below has no ordering freedom left to exploit.
        let jobs: Vec<(SystemConfig, Vec<Vec<TraceRecord>>)> = shard_traces
            .into_iter()
            .enumerate()
            .map(|(s, shard_trace)| {
                let mut shard_cfg = cfg.clone();
                shard_cfg.shards = 1;
                shard_cfg.ring = shard_ring.clone();
                // N = 1 keeps the master seed (bit-identity with the
                // unsharded pipeline); N > 1 derives a decorrelated stream
                // per shard.
                if map.shards() > 1 {
                    shard_cfg.seed = derive_stream_seed(cfg.seed, s as u64);
                }
                if let Some(over) = fault_overrides.get(s).copied().flatten() {
                    shard_cfg.faults = Some(over);
                }
                (shard_cfg, shard_trace)
            })
            .collect();
        let built: Vec<Result<Simulation, ConfigError>> = if jobs.len() == 1 {
            jobs.into_iter()
                .map(|(shard_cfg, shard_trace)| Simulation::try_new(shard_cfg, shard_trace))
                .collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .into_iter()
                    .map(|(shard_cfg, shard_trace)| {
                        scope.spawn(move || Simulation::try_new(shard_cfg, shard_trace))
                    })
                    .collect();
                // Join in shard-id order, never completion order.
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                    .collect()
            })
        };
        let mut shards = Vec::with_capacity(built.len());
        for r in built {
            // `?` on the id-ordered results reports the lowest-id failure.
            shards.push(CacheAligned(r?));
        }
        Ok(Self {
            cfg,
            map,
            shards,
            label: String::new(),
        })
    }

    /// Sets the merged report label (workload / scheme).
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = label.into();
    }

    /// The master configuration in force.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Number of shard instances.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard pipelines, in shard-id order (for inspection in tests).
    /// Slots deref transparently to [`Simulation`].
    #[must_use]
    pub fn shards(&self) -> &[CacheAligned<Simulation>] {
        &self.shards
    }

    /// Mutable access to the shard pipelines, for harnesses that drive
    /// shards individually — e.g. timing each shard in isolation to
    /// project the parallel makespan on a core-starved host. Shards are
    /// fully independent, so driving them in any order (or serially)
    /// produces the same merged report as [`Self::run`].
    #[must_use]
    pub fn shards_mut(&mut self) -> &mut [CacheAligned<Simulation>] {
        &mut self.shards
    }

    /// Program accesses planned so far, summed over shards.
    #[must_use]
    pub fn oram_accesses(&self) -> u64 {
        self.shards.iter().map(|s| s.oram_accesses()).sum()
    }

    /// Whether every shard finished its traces and drained its memory work.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.shards.iter().all(|s| s.is_finished())
    }

    /// Per-shard access digests, in shard-id order.
    #[must_use]
    pub fn shard_digests(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.access_digest()).collect()
    }

    /// The combined access digest: an order-independent fold of the
    /// per-shard FNV digests (`XOR` of `digest_s.rotate_left(s)`). For
    /// `N = 1` this is exactly shard 0's digest, hence bit-identical to
    /// [`Simulation::access_digest`] on the unsharded pipeline.
    #[must_use]
    pub fn merged_digest(&self) -> u64 {
        self.shards.iter().enumerate().fold(0u64, |acc, (s, sim)| {
            acc ^ sim.access_digest().rotate_left(s as u32)
        })
    }

    /// Runs every shard to completion, each on its own thread, and returns
    /// the deterministically merged report.
    ///
    /// `max_cycles` bounds each shard individually (shards advance their
    /// own cycle counters; there is no global clock to bound).
    ///
    /// # Errors
    ///
    /// [`CycleLimitExceeded`] from the lowest-id shard that hit the limit
    /// (chosen by shard id, not completion order, so the error is as
    /// deterministic as the success path); its `partial` report covers that
    /// shard only.
    ///
    /// # Panics
    ///
    /// Re-raises any panic from a shard worker thread.
    pub fn run(&mut self, max_cycles: u64) -> Result<SimReport, CycleLimitExceeded> {
        let results: Vec<Result<SimReport, CycleLimitExceeded>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|sim| scope.spawn(move || sim.run(max_cycles)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        for r in results {
            r?;
        }
        Ok(self.report())
    }

    /// Runs the global cross-shard invariant: the per-shard position maps,
    /// renumbered back to global block addresses, must partition the block
    /// address space (no duplicates, no misrouted residents).
    #[must_use]
    pub fn check_cross_shard(&self) -> Vec<sim_verify::Violation> {
        let mut auditor = sim_verify::ShardResidencyAuditor::new(self.map.shards());
        for (s, sim) in self.shards.iter().enumerate() {
            auditor.record_shard(
                s,
                sim.protocol()
                    .position_entries()
                    .into_iter()
                    .map(|(block, _)| self.map.global_block(s, block).0),
            );
        }
        auditor.finish()
    }

    /// Builds the merged report (also callable mid-run for progress).
    ///
    /// For `N = 1` this is exactly the single shard's report (bit-identical
    /// to the unsharded pipeline, aside from the label set on this engine).
    /// For `N > 1` every extensive counter is the sum over shards in
    /// shard-id order, means are recomputed from summed raw counters,
    /// latency percentiles from the pooled per-shard samples, and
    /// `makespan_cycles` is the slowest shard's cycle count. Violations are
    /// per-shard findings prefixed with their shard id, followed by any
    /// cross-shard residency findings (when the master `VerifyConfig`
    /// enables the ORAM audit).
    #[must_use]
    pub fn report(&self) -> SimReport {
        if self.shards.len() == 1 {
            let mut r = self.shards[0].report();
            if !self.label.is_empty() {
                r.label.clone_from(&self.label);
            }
            return r;
        }
        let snapshots: Vec<CounterSnapshot> = self.shards.iter().map(|s| s.capture()).collect();
        let merged = merge_snapshots(&snapshots);
        let pooled: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| s.read_latency_samples().iter().copied())
            .collect();
        let mut violations: Vec<String> = Vec::new();
        for (s, sim) in self.shards.iter().enumerate() {
            violations.extend(sim.violations().iter().map(|v| format!("shard {s}: {v}")));
        }
        if self.cfg.verify.oram_audit {
            violations.extend(self.check_cross_shard().iter().map(ToString::to_string));
        }
        let mut report = build_report(&self.cfg, self.label.clone(), &merged, &pooled, violations);
        report.shards = self.shards.len();
        report.makespan_cycles = snapshots.iter().map(|s| s.cycle).max().unwrap_or(0);
        // Bank idleness is a per-shard proportion over that shard's own
        // elapsed time; the merged value is the cycle-weighted mean, not a
        // recomputation against the summed clock (which would overstate
        // idleness by ~N by holding each bank to every shard's cycles).
        let total: u64 = snapshots.iter().map(|s| s.cycle).sum();
        if total > 0 {
            report.bank_idle_proportion = self
                .shards
                .iter()
                .zip(&snapshots)
                .map(|(sim, snap)| {
                    let per_shard = sim.report();
                    per_shard.bank_idle_proportion * snap.cycle as f64
                })
                .sum::<f64>()
                / total as f64;
        }
        report
    }
}

/// Splits per-core traces into per-shard, per-core traces: each record is
/// routed by its block's low address bits and renumbered into the shard's
/// local block space. Record order within a (shard, core) pair preserves
/// the original program order.
fn partition_traces(map: &ShardMap, traces: &[Vec<TraceRecord>]) -> Vec<Vec<Vec<TraceRecord>>> {
    if map.shards() == 1 {
        // Identity: hand the original traces through untouched.
        return vec![traces.to_vec()];
    }
    let mut out = vec![vec![Vec::new(); traces.len()]; map.shards()];
    for (core, trace) in traces.iter().enumerate() {
        for rec in trace {
            let block = ring_oram::BlockId(rec.op.block);
            let shard = map.shard_of(block);
            let mut local = *rec;
            local.op.block = map.local_block(block).0;
            out[shard][core].push(local);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use trace_synth::by_name;
    use trace_synth::TraceGenerator;

    fn traces(cfg: &SystemConfig, n: usize) -> Vec<Vec<TraceRecord>> {
        (0..cfg.cores)
            .map(|c| TraceGenerator::new(by_name("black").unwrap(), 11, c as u32).take_records(n))
            .collect()
    }

    #[test]
    fn partition_is_a_permutation_of_the_records() {
        let cfg = SystemConfig::test_small(Scheme::Baseline);
        let t = traces(&cfg, 200);
        let map = ShardMap::new(4).unwrap();
        let parts = partition_traces(&map, &t);
        assert_eq!(parts.len(), 4);
        for core in 0..cfg.cores {
            let total: usize = parts.iter().map(|p| p[core].len()).sum();
            assert_eq!(total, t[core].len());
        }
        // Every routed record round-trips to its original global block.
        for (shard, per_core) in parts.iter().enumerate() {
            for trace in per_core {
                for rec in trace {
                    let global = map.global_block(shard, ring_oram::BlockId(rec.op.block));
                    assert_eq!(map.shard_of(global), shard);
                }
            }
        }
    }

    #[test]
    fn singleton_partition_is_identity() {
        let cfg = SystemConfig::test_small(Scheme::Baseline);
        let t = traces(&cfg, 50);
        let map = ShardMap::new(1).unwrap();
        let parts = partition_traces(&map, &t);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], t);
    }

    #[test]
    fn sharded_run_merges_access_counts() {
        let mut cfg = SystemConfig::test_small(Scheme::All);
        cfg.shards = 2;
        let t = traces(&cfg, 60);
        let mut sim = ShardedSimulation::new(cfg, t);
        let r = sim.run(50_000_000).expect("completes");
        assert_eq!(r.shards, 2);
        assert_eq!(r.oram_accesses, 120);
        assert_eq!(r.cycles_by_kind.total(), r.total_cycles);
        assert!(r.makespan_cycles <= r.total_cycles);
        assert!(r.makespan_cycles > 0);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(sim.check_cross_shard().is_empty());
    }

    #[test]
    fn shards_must_match_config() {
        let cfg = SystemConfig::test_small(Scheme::Baseline);
        // Simulation refuses a sharded config...
        let mut sharded = cfg.clone();
        sharded.shards = 2;
        let t = traces(&sharded, 10);
        assert!(matches!(
            Simulation::try_new(sharded, t),
            Err(ConfigError::Invalid(_))
        ));
        // ...while ShardedSimulation accepts shards = 1 and stays identical.
        let t = traces(&cfg, 10);
        assert!(ShardedSimulation::try_new(cfg, t).is_ok());
    }
}
