//! Stages 2 and 4 — **Enqueue** and **Retire**: transaction bookkeeping.
//!
//! The tracker owns every unfinished ORAM transaction: it admits lowered
//! plans from the planner, feeds their requests to the memory backend in
//! strict transaction order (stalling on queue pressure, never reordering),
//! and folds completions back into transaction state, computing the cycle
//! at which a waiting core may resume.

use std::collections::{BTreeMap, VecDeque};

use dram_sim::PhysAddr;
use mem_sched::{Completed, MemoryBackend, RequestSpec, TxnId};
use ring_oram::OpKind;

use crate::pipeline::planner::PlannedTxn;

/// Live state of one ORAM transaction.
#[derive(Debug)]
struct TxnState {
    kind: OpKind,
    /// Cycle the transaction was planned (latency measurement origin).
    planned_at: u64,
    /// Requests not yet completed (enqueued or still waiting to enqueue).
    outstanding: usize,
    /// Core waiting for this transaction's target read, if any.
    waiting_core: Option<usize>,
    /// Request id of the target read once enqueued.
    target_req_id: Option<u64>,
    /// Whether the waiting core is released at transaction completion
    /// rather than at the target read (stash/tree-top/first-touch hits).
    release_on_completion: bool,
}

/// An entry awaiting queue space at the memory backend.
#[derive(Debug, Clone, Copy)]
struct PendingSpec {
    txn: TxnId,
    spec: RequestSpec,
    is_target: bool,
}

/// A core release computed by the tracker: core `core` may resume at cycle
/// `at`. `latency` is the plan-to-data latency sample to record when the
/// release ends a program read (degenerate on-chip transactions release
/// without a sample, matching the pre-pipeline accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wake {
    /// The core to release.
    pub core: usize,
    /// First cycle at which the core may resume.
    pub at: u64,
    /// Plan-to-data latency sample, when one applies.
    pub latency: Option<u64>,
}

/// What retiring one completion did: the transaction's kind (for row-class
/// attribution) and the core release it triggered, if any.
#[derive(Debug, Clone, Copy)]
pub struct Retired {
    /// Kind of the transaction the completion belonged to.
    pub kind: OpKind,
    /// Core release triggered by this completion, if any.
    pub wake: Option<Wake>,
}

/// Stages 2 and 4 of the pipeline: transaction admission, strictly ordered
/// enqueue, and retirement.
///
/// Transaction ids are assigned sequentially and the in-flight window is
/// small, so unfinished transactions live in a dense ring buffer indexed by
/// `id - txns_base` (`None` marks ids already finished or completed at
/// admission). This keeps the per-completion lookup and the per-cycle
/// oldest-transaction probe O(1) instead of paying an ordered-map descent
/// on the simulator's two hottest paths.
#[derive(Debug, Default)]
pub struct TxnTracker {
    /// Unfinished transactions: slot `i` holds transaction `txns_base + i`.
    txns: VecDeque<Option<TxnState>>,
    /// Id of the transaction at `txns[0]`; the front slot is kept `Some`
    /// (finished front entries are popped eagerly) unless nothing is live.
    txns_base: u64,
    /// Number of `Some` entries in `txns`.
    live: usize,
    next_txn: u64,
    /// Planned requests awaiting queue space, in strict transaction order.
    enqueue_fifo: VecDeque<PendingSpec>,
    transactions_by_kind: BTreeMap<&'static str, u64>,
}

impl TxnTracker {
    /// An empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits one lowered transaction: assigns an id and queues its
    /// requests for ordered enqueue. A degenerate (fully on-chip)
    /// transaction completes immediately and returns its core release.
    ///
    /// The tracker copies the requests into its own queues, so the
    /// transaction's request buffer is handed back for the caller to
    /// recycle into the planner's pool (the allocation loop on the hot
    /// path closes here).
    pub fn admit(
        &mut self,
        planned: PlannedTxn,
        cycle: u64,
    ) -> (Vec<(PhysAddr, bool)>, Option<Wake>) {
        let txn = TxnId(self.next_txn);
        self.next_txn += 1;
        *self
            .transactions_by_kind
            .entry(planned.kind.label())
            .or_default() += 1;

        let state = TxnState {
            kind: planned.kind,
            planned_at: cycle,
            outstanding: planned.requests.len(),
            waiting_core: planned.waiting_core,
            target_req_id: None,
            release_on_completion: planned.release_on_completion,
        };
        for (i, &(addr, is_write)) in planned.requests.iter().enumerate() {
            self.enqueue_fifo.push_back(PendingSpec {
                txn,
                spec: RequestSpec {
                    addr,
                    is_write,
                    txn,
                },
                is_target: planned.target_index == Some(i),
            });
        }
        let wake = if state.outstanding == 0 {
            // Degenerate (fully on-chip) transaction: complete at once.
            state.waiting_core.map(|core| Wake {
                core,
                at: cycle + 1,
                latency: None,
            })
        } else {
            self.insert(txn.0, state);
            None
        };
        (planned.requests, wake)
    }

    /// Inserts `state` at its id slot, padding skipped (degenerate) ids
    /// with `None`.
    fn insert(&mut self, id: u64, state: TxnState) {
        if self.live == 0 {
            self.txns.clear();
            self.txns_base = id;
        }
        debug_assert!(id >= self.txns_base + self.txns.len() as u64);
        while self.txns_base + (self.txns.len() as u64) < id {
            self.txns.push_back(None);
        }
        self.txns.push_back(Some(state));
        self.live += 1;
    }

    /// The live state of transaction `id`, if still unfinished.
    fn get_mut(&mut self, id: u64) -> Option<&mut TxnState> {
        let idx = id.checked_sub(self.txns_base)?;
        self.txns.get_mut(usize::try_from(idx).ok()?)?.as_mut()
    }

    /// Marks transaction `id` finished and pops any finished prefix so the
    /// front slot stays live.
    fn remove(&mut self, id: u64) {
        if let Some(idx) = id
            .checked_sub(self.txns_base)
            .and_then(|i| usize::try_from(i).ok())
        {
            if let Some(slot) = self.txns.get_mut(idx) {
                if slot.take().is_some() {
                    self.live -= 1;
                }
            }
        }
        while matches!(self.txns.front(), Some(None)) {
            self.txns.pop_front();
            self.txns_base += 1;
        }
    }

    /// Feeds the backend in strict transaction order, stopping at the
    /// first request the backend has no room for (retried next cycle).
    pub fn enqueue_ready(&mut self, backend: &mut dyn MemoryBackend, cycle: u64) {
        while let Some(head) = self.enqueue_fifo.front().copied() {
            match backend.try_enqueue(head.spec, cycle) {
                Ok(id) => {
                    if head.is_target {
                        if let Some(t) = self.get_mut(head.txn.0) {
                            t.target_req_id = Some(id);
                        }
                    }
                    self.enqueue_fifo.pop_front();
                }
                Err(_) => break, // queue full: retry next cycle
            }
        }
    }

    /// Folds one completion into its transaction. Returns `None` for
    /// completions of unknown transactions (e.g. reissued responses of
    /// already-finished work under fault injection).
    pub fn retire(&mut self, done: &Completed, cycle: u64) -> Option<Retired> {
        let t = self.get_mut(done.txn.0)?;
        t.outstanding -= 1;
        let kind = t.kind;
        let mut wake = None;
        if t.target_req_id == Some(done.id) {
            if let Some(core) = t.waiting_core.take() {
                let at = done.data_done_at.max(cycle + 1);
                wake = Some(Wake {
                    core,
                    at,
                    latency: Some(at - t.planned_at),
                });
            }
        }
        if t.outstanding == 0 {
            if let Some(core) = t.waiting_core.take() {
                // Stash / tree-top / first-touch hits release here.
                debug_assert!(t.release_on_completion);
                let at = done.data_done_at.max(cycle + 1);
                wake = Some(Wake {
                    core,
                    at,
                    latency: Some(at - t.planned_at),
                });
            }
            self.remove(done.txn.0);
        }
        Some(Retired { kind, wake })
    }

    /// Kind of the oldest unfinished transaction (cycle attribution).
    #[must_use]
    pub fn oldest_kind(&self) -> Option<OpKind> {
        self.txns.front().and_then(|t| t.as_ref()).map(|t| t.kind)
    }

    /// Unfinished transactions currently tracked.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.live
    }

    /// Whether no transaction state remains (nothing tracked, nothing
    /// awaiting enqueue).
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.live == 0 && self.enqueue_fifo.is_empty()
    }

    /// Transactions admitted so far, by kind label.
    #[must_use]
    pub fn transactions_by_kind(&self) -> &BTreeMap<&'static str, u64> {
        &self.transactions_by_kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planned(kind: OpKind, n: usize, target: Option<usize>, core: Option<usize>) -> PlannedTxn {
        PlannedTxn {
            kind,
            requests: (0..n)
                .map(|i| (dram_sim::PhysAddr(i as u64 * 64), false))
                .collect(),
            target_index: target,
            waiting_core: core,
            release_on_completion: target.is_none(),
        }
    }

    #[test]
    fn degenerate_transaction_wakes_immediately() {
        let mut tr = TxnTracker::new();
        let (_, w) = tr.admit(planned(OpKind::ReadPath, 0, None, Some(3)), 10);
        assert_eq!(
            w,
            Some(Wake {
                core: 3,
                at: 11,
                latency: None
            })
        );
        assert_eq!(tr.inflight(), 0);
        assert!(tr.is_drained());
        assert_eq!(tr.transactions_by_kind()["read"], 1);
    }

    #[test]
    fn admission_preserves_transaction_order() {
        let mut tr = TxnTracker::new();
        assert!(tr
            .admit(planned(OpKind::ReadPath, 2, None, None), 0)
            .1
            .is_none());
        assert!(tr
            .admit(planned(OpKind::Eviction, 1, None, None), 0)
            .1
            .is_none());
        assert_eq!(tr.inflight(), 2);
        assert_eq!(tr.oldest_kind(), Some(OpKind::ReadPath));
        assert!(!tr.is_drained());
    }
}
