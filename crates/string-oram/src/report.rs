//! Simulation reports: everything the paper's figures are drawn from.

use std::collections::BTreeMap;

use dram_sim::power::EnergyBreakdown;
use mem_sched::RowClass;
use ring_oram::{OpKind, ProtocolStats};

/// Execution-cycle attribution by ORAM operation kind (the stacked bars of
/// the paper's Fig. 10). Each memory cycle is attributed to the kind of the
/// oldest unfinished ORAM transaction; cycles with no transaction in flight
/// (and dummy read paths) fall into `other`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCycles {
    /// Cycles attributed to program read paths.
    pub read: u64,
    /// Cycles attributed to evictions.
    pub evict: u64,
    /// Cycles attributed to early reshuffles.
    pub reshuffle: u64,
    /// Dummy read paths, fault-recovery retries, idle and everything else.
    /// (Retry cycles are additionally broken out in
    /// [`ResilienceSummary::retry_cycles`] so Fig. 10's buckets keep their
    /// fault-free meaning.)
    pub other: u64,
}

impl KindCycles {
    /// Total attributed cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.read + self.evict + self.reshuffle + self.other
    }

    /// Adds one cycle to the bucket for `kind` (`None` = no transaction in
    /// flight).
    pub fn add(&mut self, kind: Option<OpKind>) {
        match kind {
            Some(OpKind::ReadPath) => self.read += 1,
            Some(OpKind::Eviction) => self.evict += 1,
            Some(OpKind::EarlyReshuffle) => self.reshuffle += 1,
            Some(OpKind::DummyReadPath | OpKind::RetryRead) | None => self.other += 1,
        }
    }

    /// Bucket-wise difference `self - earlier` for measurement windows.
    #[must_use]
    pub fn delta(&self, earlier: &Self) -> Self {
        Self {
            read: self.read - earlier.read,
            evict: self.evict - earlier.evict,
            reshuffle: self.reshuffle - earlier.reshuffle,
            other: self.other - earlier.other,
        }
    }
}

/// Row-buffer outcome counts for one operation kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RowClassCounts {
    /// Requests that found their row open.
    pub hits: u64,
    /// Requests that found the bank precharged.
    pub misses: u64,
    /// Requests that found a different row open.
    pub conflicts: u64,
}

impl RowClassCounts {
    /// Folds in one request outcome.
    pub fn add(&mut self, class: RowClass) {
        match class {
            RowClass::Hit => self.hits += 1,
            RowClass::Miss => self.misses += 1,
            RowClass::Conflict => self.conflicts += 1,
        }
    }

    /// Total classified requests.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.hits + self.misses + self.conflicts
    }

    /// Fraction of requests that were conflicts (Fig. 5(b)'s metric).
    #[must_use]
    pub fn conflict_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.total() as f64
        }
    }

    /// Fraction of requests that needed any row activation (miss or
    /// conflict).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.misses + self.conflicts) as f64 / self.total() as f64
        }
    }

    /// Count-wise difference `self - earlier` for measurement windows.
    #[must_use]
    pub fn delta(&self, earlier: &Self) -> Self {
        Self {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            conflicts: self.conflicts - earlier.conflicts,
        }
    }
}

/// Latency percentiles over a sample population, in memory-bus cycles.
///
/// Quantiles are linearly interpolated between adjacent order statistics
/// (the common "type 7" estimator), so small pools report e.g. the true
/// midpoint of two samples instead of clamping to the lower one.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyPercentiles {
    /// Number of samples.
    pub samples: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile (the serving layer's tail-latency target).
    pub p999: u64,
    /// Maximum observed.
    pub max: u64,
}

/// Interpolated quantile of a sorted, non-empty sample pool: the rank
/// `(len - 1) * q` linearly interpolated between the two adjacent order
/// statistics, rounded to the nearest cycle. Exact ranks (including the
/// single-sample pool) return the order statistic itself.
fn interpolated_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = (sorted.len() - 1) as f64 * q;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return sorted[lo];
    }
    let frac = rank - lo as f64;
    let (a, b) = (sorted[lo] as f64, sorted[hi] as f64);
    (a + (b - a) * frac).round() as u64
}

impl LatencyPercentiles {
    /// Computes percentiles from raw samples (empty input yields zeros).
    #[must_use]
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut v = samples.to_vec();
        v.sort_unstable();
        let at = |q: f64| interpolated_quantile(&v, q);
        Self {
            samples: v.len() as u64,
            p50: at(0.50),
            p95: at(0.95),
            p99: at(0.99),
            p999: at(0.999),
            max: v[v.len() - 1],
        }
    }

    /// Computes merged percentiles over per-shard sample populations (the
    /// sharded engine's pooled view). Shards with empty windows contribute
    /// nothing; an all-empty input yields the all-zero summary, same as
    /// [`Self::from_samples`] on an empty slice — never a panic.
    #[must_use]
    pub fn from_shard_samples(per_shard: &[&[u64]]) -> Self {
        let pooled: Vec<u64> = per_shard.iter().flat_map(|s| s.iter().copied()).collect();
        Self::from_samples(&pooled)
    }

    /// Whether the population is empty (percentiles are the zero defaults,
    /// not observed values).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }

    /// Median, or `None` for an empty population — for callers that must
    /// distinguish "no reads completed" from a measured 0-cycle latency.
    #[must_use]
    pub fn median(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.p50)
    }
}

/// Resilience counters for one run: what the fault layer injected and how
/// the stack absorbed it. All zeros when fault injection is disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceSummary {
    /// Transit corruptions injected into block fetches.
    pub faults_injected: u64,
    /// Corruptions caught by the integrity tag.
    pub faults_detected: u64,
    /// Bounded re-reads performed to recover corrupted fetches.
    pub fault_retries: u64,
    /// Corrupted fetches recovered within the retry budget.
    pub faults_recovered: u64,
    /// Corrupted fetches that exhausted the retry budget.
    pub faults_unrecovered: u64,
    /// Entries into degraded mode (green substitution suspended).
    pub degraded_entries: u64,
    /// Exits from degraded mode.
    pub degraded_exits: u64,
    /// Extra background-eviction rounds forced by the stash escalation
    /// watermark.
    pub background_escalations: u64,
    /// Memory cycles attributed to in-flight retry transactions (latency
    /// cost of fault recovery; also included in `cycles_by_kind.other`).
    pub retry_cycles: u64,
    /// Memory-controller responses delayed by injected late-response
    /// faults.
    pub responses_delayed: u64,
    /// Memory-controller data commands whose response was dropped and
    /// reissued.
    pub responses_dropped: u64,
    /// 1024-cycle windows during which injected queue saturation reduced
    /// the controller's effective queue capacity.
    pub queue_saturation_windows: u64,
    /// Refreshes stretched into storms (tRFC multiplied) by the DRAM fault
    /// hooks.
    pub refresh_storms: u64,
    /// Row activations that hit an injected weak row and stalled before
    /// serving column commands.
    pub weak_row_stalls: u64,
}

/// Serving outcome of one tenant under the `oram-service` front-end.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// Tenant name (from the service configuration).
    pub tenant: String,
    /// Requests generated by the tenant's arrival process.
    pub arrivals: u64,
    /// Requests that passed admission into the tenant's bounded queue.
    pub admitted: u64,
    /// Requests whose data arrived within their deadline.
    pub completed: u64,
    /// Requests that resolved by deadline expiry (after any retries).
    pub timed_out: u64,
    /// Arrivals rejected because the tenant queue was at capacity.
    pub rejected_queue_full: u64,
    /// Arrivals rejected by the degraded-mode admission quota.
    pub rejected_throttled: u64,
    /// Arrivals rejected while the overload governor was shedding.
    pub rejected_shed: u64,
    /// Re-admissions of deadline-expired requests (bounded per request).
    pub retries: u64,
    /// Engine completions that arrived after their request had already
    /// resolved as timed out (the work still happened; the data is
    /// discarded — never a second resolution).
    pub late_completions: u64,
    /// Highest queue depth the tenant ever reached (≤ its configured cap).
    pub queue_depth_high_water: usize,
    /// Submission-to-completion latency percentiles over completed
    /// requests, in virtual (memory-bus) cycles.
    pub latency: LatencyPercentiles,
}

impl TenantSummary {
    /// Total rejected arrivals, over all rejection reasons.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected_queue_full + self.rejected_throttled + self.rejected_shed
    }

    /// Total resolved requests. Every arrival resolves exactly once, so
    /// this must equal [`Self::arrivals`] at end of run (the
    /// `ServiceAuditor` enforces it).
    #[must_use]
    pub fn resolved(&self) -> u64 {
        self.completed + self.timed_out + self.rejected()
    }
}

/// Overload-governor activity: Healthy → Degraded → Shedding transitions
/// taken during the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorSummary {
    /// Healthy → Degraded transitions.
    pub degraded_entries: u64,
    /// Degraded → Shedding transitions.
    pub shed_entries: u64,
    /// Degraded → Healthy recoveries.
    pub recoveries: u64,
}

/// Serving-layer summary attached to a [`SimReport`] when the run was
/// driven by the `oram-service` front-end.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSummary {
    /// Submission-policy label (e.g. `"best-effort"` or
    /// `"fixed-rate/interval=4/batch=2"`).
    pub policy: String,
    /// Virtual ticks (memory-bus cycles) the service ran for, including
    /// the post-horizon drain.
    pub ticks: u64,
    /// Program accesses dispatched on behalf of tenant requests.
    pub real_accesses: u64,
    /// Cover (dummy-padding) accesses dispatched to hold the fixed-rate
    /// cadence; always zero under best-effort submission.
    pub padding_accesses: u64,
    /// FNV-1a digest of the submission envelope — `(tick, slot count)` for
    /// every submitting tick. Under fixed-rate padding this is a pure
    /// function of the policy and run length, identical across different
    /// tenant loads (the timing-channel oracle).
    pub schedule_digest: u64,
    /// Overload-governor transition counts.
    pub governor: GovernorSummary,
    /// Per-tenant outcomes, in tenant-id order.
    pub tenants: Vec<TenantSummary>,
}

impl ServiceSummary {
    /// Fraction of engine accesses that were padding (the throughput cost
    /// of the fixed-rate cadence); zero when nothing was dispatched.
    #[must_use]
    pub fn padding_overhead(&self) -> f64 {
        let total = self.real_accesses + self.padding_accesses;
        if total == 0 {
            0.0
        } else {
            self.padding_accesses as f64 / total as f64
        }
    }

    /// Looks a tenant up by name.
    #[must_use]
    pub fn tenant(&self, name: &str) -> Option<&TenantSummary> {
        self.tenants.iter().find(|t| t.tenant == name)
    }
}

/// The complete result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Free-form run label (workload / scheme).
    pub label: String,
    /// Stable name of the command-scheduling policy the run used
    /// (`mem_sched::SchedulerPolicy::name`, e.g. `"proactive-bank"`).
    pub policy_name: String,
    /// Shard instances the run used (1 = the unsharded pipeline). For a
    /// merged sharded report, every extensive counter below is the sum over
    /// shards, combined in shard-id order.
    pub shards: usize,
    /// Total memory-bus cycles simulated. For a merged sharded report this
    /// is the *sum* of per-shard cycles (total work; it keeps
    /// `cycles_by_kind.total()` equal to `total_cycles`); wall-clock-like
    /// completion is [`Self::makespan_cycles`].
    pub total_cycles: u64,
    /// Cycles until the slowest shard finished (max over shards). Equals
    /// `total_cycles` for an unsharded run.
    pub makespan_cycles: u64,
    /// Cycle attribution by operation kind.
    pub cycles_by_kind: KindCycles,
    /// Total instructions retired across cores.
    pub instructions: u64,
    /// Program (LLC-miss) accesses served by the ORAM.
    pub oram_accesses: u64,
    /// ORAM transactions executed, by kind.
    pub transactions_by_kind: BTreeMap<&'static str, u64>,
    /// Row-buffer outcomes per operation kind.
    pub row_class_by_kind: BTreeMap<&'static str, RowClassCounts>,
    /// Mean read-queue wait in cycles.
    pub mean_read_queue_wait: f64,
    /// Mean write-queue wait in cycles.
    pub mean_write_queue_wait: f64,
    /// Mean queued requests per tick.
    pub mean_queue_occupancy: f64,
    /// Average bank idle proportion over the whole run (all bank-cycles,
    /// whether or not work was pending).
    pub bank_idle_proportion: f64,
    /// Of the bank-cycles with pending requests, the fraction spent idle —
    /// the Fig. 12(a) metric: idleness the scheduling barrier causes.
    pub pending_bank_idle_proportion: f64,
    /// Fraction of PRE commands issued early by PB (Fig. 12(b)).
    pub early_precharge_fraction: f64,
    /// Fraction of ACT commands issued early by PB (Fig. 12(b)).
    pub early_activate_fraction: f64,
    /// Write data commands a read bypassed under a read-priority policy
    /// (zero for policies without read/write prioritization).
    pub deferred_writes: u64,
    /// Issue slots a pacing policy declined to use (zero except under
    /// fixed-cadence scheduling).
    pub withheld_issue_slots: u64,
    /// Protocol statistics (greens, stash samples, background evictions).
    pub protocol: ProtocolStats,
    /// Fault-injection and graceful-degradation counters (all zeros when
    /// fault injection is off).
    pub resilience: ResilienceSummary,
    /// Total memory requests completed.
    pub requests_completed: u64,
    /// DRAM energy estimate (Micron-style model; see `dram_sim::power`).
    pub energy: EnergyBreakdown,
    /// Channel imbalance (max/mean of per-channel completed requests).
    pub channel_imbalance: f64,
    /// Program read-path latency percentiles (plan to data availability).
    pub read_latency: LatencyPercentiles,
    /// Conformance violations found by the `sim-verify` checkers, rendered
    /// as `"[rule] at cycle: evidence"` lines. Empty when `cfg.verify` is
    /// off — or when the simulated machine honored every checked rule.
    pub violations: Vec<String>,
    /// Serving-layer summary (per-tenant percentiles, shed/timeout/retry
    /// counters, padding cost) when the run was driven by the
    /// `oram-service` front-end; `None` for plain trace-driven runs.
    pub service: Option<ServiceSummary>,
}

impl SimReport {
    /// Row-class counts for an operation kind label (e.g. `"read"`).
    #[must_use]
    pub fn row_class(&self, kind: OpKind) -> RowClassCounts {
        self.row_class_by_kind
            .get(kind.label())
            .copied()
            .unwrap_or_default()
    }

    /// Instructions per memory cycle (higher = faster for a fixed trace).
    #[must_use]
    pub fn ipc_mem(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.total_cycles as f64
        }
    }

    /// Execution time of this run normalized to `baseline` (< 1 = faster),
    /// comparing cycles to complete the same trace.
    #[must_use]
    pub fn normalized_time(&self, baseline: &SimReport) -> f64 {
        if baseline.total_cycles == 0 {
            0.0
        } else {
            self.total_cycles as f64 / baseline.total_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_cycles_bucketing() {
        let mut k = KindCycles::default();
        k.add(Some(OpKind::ReadPath));
        k.add(Some(OpKind::Eviction));
        k.add(Some(OpKind::EarlyReshuffle));
        k.add(Some(OpKind::DummyReadPath));
        k.add(None);
        assert_eq!(k.read, 1);
        assert_eq!(k.evict, 1);
        assert_eq!(k.reshuffle, 1);
        assert_eq!(k.other, 2);
        assert_eq!(k.total(), 5);
    }

    #[test]
    fn row_class_rates() {
        let mut c = RowClassCounts::default();
        c.add(RowClass::Hit);
        c.add(RowClass::Conflict);
        c.add(RowClass::Conflict);
        c.add(RowClass::Miss);
        assert_eq!(c.total(), 4);
        assert!((c.conflict_rate() - 0.5).abs() < 1e-12);
        assert!((c.miss_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn latency_percentiles() {
        let p = LatencyPercentiles::from_samples(&[]);
        assert_eq!(p.samples, 0);
        assert_eq!(p.max, 0);
        let samples: Vec<u64> = (1..=100).collect();
        let p = LatencyPercentiles::from_samples(&samples);
        assert_eq!(p.samples, 100);
        // Interpolated ("type 7") quantiles: rank (n-1)·q between adjacent
        // order statistics. p50 of 1..=100 sits between 50 and 51.
        assert_eq!(p.p50, 51); // 50.5 rounded half-up
        assert_eq!(p.p95, 95); // 95.05 rounds to 95
        assert_eq!(p.p99, 99); // 99.01 rounds to 99
        assert_eq!(p.p999, 100); // 99.901 rounds to 100
        assert_eq!(p.max, 100);
    }

    /// Satellite regression: small pools must interpolate between order
    /// statistics, not clamp to the lower one, and `p999` must be exact on
    /// pools large enough to pin it.
    #[test]
    fn percentiles_interpolate_on_known_distributions() {
        // Two-point pool: every interior quantile is a blend, not a clamp.
        let p = LatencyPercentiles::from_samples(&[10, 20]);
        assert_eq!(p.p50, 15, "midpoint, not the lower clamp (10)");
        assert_eq!(p.p95, 20); // 19.5 rounds up
        assert_eq!(p.p99, 20);
        assert_eq!(p.p999, 20);
        assert_eq!(p.max, 20);

        // Single sample: every quantile is that sample.
        let p = LatencyPercentiles::from_samples(&[7]);
        assert_eq!((p.p50, p.p95, p.p99, p.p999, p.max), (7, 7, 7, 7, 7));

        // 1001 uniform samples 0..=1000: ranks land exactly on order
        // statistics, so quantiles equal the true distribution quantiles.
        let v: Vec<u64> = (0..=1000).collect();
        let p = LatencyPercentiles::from_samples(&v);
        assert_eq!(p.p50, 500);
        assert_eq!(p.p95, 950);
        assert_eq!(p.p99, 990);
        assert_eq!(p.p999, 999);
        assert_eq!(p.max, 1000);

        // Order must not matter.
        let mut shuffled: Vec<u64> = v.iter().rev().copied().collect();
        shuffled.rotate_left(313);
        assert_eq!(LatencyPercentiles::from_samples(&shuffled), p);

        // Merging shards through the pool is the same estimator.
        let (a, b) = v.split_at(400);
        assert_eq!(LatencyPercentiles::from_shard_samples(&[b, a]), p);
    }

    /// Regression: an empty sample population must yield an all-zero
    /// summary, never panic (measurement windows can legitimately contain
    /// zero completed program reads).
    #[test]
    fn empty_latency_samples_yield_zeroed_summary() {
        assert_eq!(
            LatencyPercentiles::from_samples(&[]),
            LatencyPercentiles::default()
        );
    }

    /// Satellite regression: pooling an all-empty shard window with a
    /// populated one must behave exactly like the populated window alone,
    /// and an all-empty pool must be the zero summary (`median()` `None`),
    /// never a panic.
    #[test]
    fn shard_sample_merge_handles_empty_windows() {
        let populated: Vec<u64> = (1..=50).collect();
        let merged = LatencyPercentiles::from_shard_samples(&[&[], &populated]);
        assert_eq!(merged, LatencyPercentiles::from_samples(&populated));
        assert!(!merged.is_empty());
        assert_eq!(merged.median(), Some(26)); // 25.5 interpolated, rounded up

        let all_empty = LatencyPercentiles::from_shard_samples(&[&[], &[], &[]]);
        assert_eq!(all_empty, LatencyPercentiles::default());
        assert!(all_empty.is_empty());
        assert_eq!(all_empty.median(), None);
        assert_eq!(all_empty.p50, 0);
        assert_eq!(all_empty.max, 0);
    }

    #[test]
    fn shard_sample_merge_pools_across_shards() {
        let a: Vec<u64> = (1..=50).collect();
        let b: Vec<u64> = (51..=100).collect();
        let merged = LatencyPercentiles::from_shard_samples(&[&a, &b]);
        let direct: Vec<u64> = (1..=100).collect();
        assert_eq!(merged, LatencyPercentiles::from_samples(&direct));
        assert_eq!(merged.samples, 100);
    }

    #[test]
    fn kind_cycles_retry_counts_as_other() {
        let mut k = KindCycles::default();
        k.add(Some(OpKind::RetryRead));
        assert_eq!(k.other, 1);
        assert_eq!(k.total(), 1);
    }

    #[test]
    fn empty_rates_are_zero() {
        let c = RowClassCounts::default();
        assert_eq!(c.conflict_rate(), 0.0);
        assert_eq!(c.miss_rate(), 0.0);
    }
}
