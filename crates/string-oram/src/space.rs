//! Analytic memory-space model (the paper's Fig. 4 and Table V).
//!
//! Space accounting is exact arithmetic over the tree geometry: a tree of
//! `2^(L+1) - 1` buckets stores `Z` real slots and `S - Y` physical dummy
//! slots per bucket. Fig. 4 sweeps the bandwidth-optimal `(Z, A, S)`
//! configurations; Table V sweeps the CB rate `Y` over the default tree.

use ring_oram::RingConfig;

/// One row of a space table.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceRow {
    /// Configuration label.
    pub label: String,
    /// `Z` (real slots per bucket).
    pub z: u32,
    /// `A` (eviction rate).
    pub a: u32,
    /// `S` (logical dummy budget).
    pub s: u32,
    /// `Y` (CB rate).
    pub y: u32,
    /// Bytes of real-block capacity.
    pub real_bytes: u64,
    /// Bytes of physical dummy blocks.
    pub dummy_bytes: u64,
}

impl SpaceRow {
    /// Computes the row for a configuration.
    #[must_use]
    pub fn for_config(label: impl Into<String>, cfg: &RingConfig) -> Self {
        let buckets = cfg.bucket_count();
        let block = u64::from(cfg.block_bytes);
        Self {
            label: label.into(),
            z: cfg.z,
            a: cfg.a,
            s: cfg.s,
            y: cfg.y,
            real_bytes: buckets * u64::from(cfg.z) * block,
            dummy_bytes: buckets * u64::from(cfg.dummy_slots()) * block,
        }
    }

    /// Total allocated bytes (real + dummy).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.real_bytes + self.dummy_bytes
    }

    /// Fraction of allocated space holding dummy blocks (Table V's "Dummy
    /// Block Percentage").
    #[must_use]
    pub fn dummy_percentage(&self) -> f64 {
        if self.total_bytes() == 0 {
            0.0
        } else {
            self.dummy_bytes as f64 / self.total_bytes() as f64
        }
    }

    /// Memory space efficiency: real capacity over total allocation (the
    /// paper quotes 35.56 % for Config-4 of Fig. 4).
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        if self.total_bytes() == 0 {
            0.0
        } else {
            self.real_bytes as f64 / self.total_bytes() as f64
        }
    }

    /// Real capacity in GiB.
    #[must_use]
    pub fn real_gib(&self) -> f64 {
        self.real_bytes as f64 / (1u64 << 30) as f64
    }

    /// Dummy capacity in GiB.
    #[must_use]
    pub fn dummy_gib(&self) -> f64 {
        self.dummy_bytes as f64 / (1u64 << 30) as f64
    }

    /// Total capacity in GiB.
    #[must_use]
    pub fn total_gib(&self) -> f64 {
        self.total_bytes() as f64 / (1u64 << 30) as f64
    }
}

/// The four rows of Fig. 4 (baseline Ring ORAM, `L = 23`, 64 B blocks).
#[must_use]
pub fn fig4_rows() -> Vec<SpaceRow> {
    (1..=4)
        .map(|i| SpaceRow::for_config(format!("Config-{i}"), &RingConfig::fig4_config(i)))
        .collect()
}

/// The five rows of Table V (`Z = 8, S = 12, L = 23`, `Y = 0..=8`).
#[must_use]
pub fn table5_rows() -> Vec<SpaceRow> {
    (0..=4)
        .map(|i| {
            let label = if i == 0 {
                "Baseline".to_owned()
            } else {
                format!("Config-{i}")
            };
            SpaceRow::for_config(label, &RingConfig::table5_config(i))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_real_capacity_grows_linearly() {
        let rows = fig4_rows();
        // Z = 4, 8, 16, 32 -> 4, 8, 16, 32 GiB-class real capacity.
        let gib: Vec<u64> = rows.iter().map(|r| r.real_bytes >> 30).collect();
        assert_eq!(gib, vec![3, 7, 15, 31]); // 2^24 - 1 buckets: just under
        for w in rows.windows(2) {
            assert!(
                w[1].real_bytes == 2 * w[0].real_bytes + w[1].real_bytes % 2,
                "real capacity doubles with Z"
            );
        }
    }

    #[test]
    fn fig4_dummy_capacity_grows_superlinearly() {
        let rows = fig4_rows();
        for w in rows.windows(2) {
            let real_ratio = w[1].real_bytes as f64 / w[0].real_bytes as f64;
            let dummy_ratio = w[1].dummy_bytes as f64 / w[0].dummy_bytes as f64;
            assert!(
                dummy_ratio > real_ratio * 0.99,
                "dummies must grow at least as fast as reals"
            );
        }
        // Config-1 -> Config-2 dummy growth is clearly superlinear vs Z.
        assert!(rows[1].dummy_bytes as f64 / rows[0].dummy_bytes as f64 > 2.0);
    }

    #[test]
    fn fig4_config4_efficiency_matches_paper() {
        // The paper: Z=32/S=58 has 35.56 % space efficiency.
        let row = SpaceRow::for_config("c4", &RingConfig::fig4_config(4));
        assert!((row.efficiency() - 32.0 / 90.0).abs() < 1e-9);
        assert!((row.efficiency() - 0.3556).abs() < 1e-3);
    }

    #[test]
    fn table5_matches_paper_values() {
        // Paper Table V: total 20/18/16/14/12 GB; dummy % 60/55.6/50/42.9/33.3.
        let rows = table5_rows();
        let totals: Vec<u64> = rows
            .iter()
            .map(|r| (r.total_gib()).round() as u64)
            .collect();
        assert_eq!(totals, vec![20, 18, 16, 14, 12]);
        let expect = [0.60, 0.556, 0.50, 0.429, 0.333];
        for (r, e) in rows.iter().zip(expect) {
            assert!(
                (r.dummy_percentage() - e).abs() < 5e-3,
                "{}: {} vs {}",
                r.label,
                r.dummy_percentage(),
                e
            );
        }
    }

    #[test]
    fn cb_saves_up_to_40_percent() {
        let rows = table5_rows();
        let baseline = rows[0].total_bytes();
        let best = rows[4].total_bytes();
        let saving = 1.0 - best as f64 / baseline as f64;
        assert!((saving - 0.40).abs() < 1e-9, "saving {saving}");
    }

    #[test]
    fn rows_carry_config_parameters() {
        let r = &fig4_rows()[1];
        assert_eq!((r.z, r.a, r.s, r.y), (8, 8, 12, 0));
        assert_eq!(r.total_bytes(), r.real_bytes + r.dummy_bytes);
    }
}
