//! The full-system simulator: cores → ORAM controller → memory controller
//! → DRAM, advanced in lockstep at memory-bus granularity.

use std::collections::{BTreeMap, VecDeque};

use dram_sim::{AddressMapping, DramModule, PhysAddr};
use mem_sched::{MemoryController, RequestSpec, TxnId};
use ring_oram::layout::{NaiveLayout, SubtreeLayout, TreeLayout};
use ring_oram::recursive::{RecursiveConfig, RecursiveOram};
use ring_oram::{AccessPlan, BlockId, OpKind, RingOram};
use trace_synth::TraceRecord;

use crate::config::{ConfigError, SystemConfig};
use crate::cpu::{Core, CoreRequest};
use crate::report::{KindCycles, RowClassCounts, SimReport};

/// Live state of one ORAM transaction.
#[derive(Debug)]
struct TxnState {
    kind: OpKind,
    /// Cycle the transaction was planned (latency measurement origin).
    planned_at: u64,
    /// Requests not yet completed (enqueued or still waiting to enqueue).
    outstanding: usize,
    /// Core waiting for this transaction's target read, if any.
    waiting_core: Option<usize>,
    /// Request id of the target read once enqueued.
    target_req_id: Option<u64>,
    /// Whether the waiting core is released at transaction completion
    /// rather than at the target read (stash/tree-top/first-touch hits).
    release_on_completion: bool,
}

/// Counter snapshot taken at [`Simulation::begin_measurement`]; `report`
/// subtracts it so warm-up activity is excluded from every rate.
#[derive(Debug)]
struct MeasurementStart {
    cycle: u64,
    instructions: u64,
    oram_accesses: u64,
    cycles_by_kind: KindCycles,
    transactions_by_kind: BTreeMap<&'static str, u64>,
    row_class_by_kind: BTreeMap<&'static str, RowClassCounts>,
    sched: mem_sched::SchedulerStats,
    dram: dram_sim::DramStats,
    bank_busy: Vec<u64>,
    refreshes: u64,
    protocol: ring_oram::ProtocolStats,
    read_latency_idx: usize,
    retry_cycles: u64,
    refresh_storms: u64,
    weak_row_stalls: u64,
}

/// An entry awaiting queue space at the memory controller.
#[derive(Debug, Clone, Copy)]
struct PendingSpec {
    txn: TxnId,
    spec: RequestSpec,
    is_target: bool,
}

/// Error returned when a run exceeds its cycle budget (wedged or just too
/// slow for the limit given).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleLimitExceeded {
    /// The limit that was hit.
    pub limit: u64,
}

impl std::fmt::Display for CycleLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulation exceeded {} cycles", self.limit)
    }
}

impl std::error::Error for CycleLimitExceeded {}

/// The protocol engine driving the simulation: a single data ORAM (the
/// paper's setup) or a recursive stack with per-ORAM memory regions.
#[derive(Debug)]
enum Engine {
    Flat {
        oram: Box<RingOram>,
        layout: Box<dyn TreeLayout>,
    },
    Recursive {
        stack: Box<RecursiveOram>,
        /// Per-stack-index layout and base address (disjoint regions).
        regions: Vec<(Box<dyn TreeLayout>, u64)>,
    },
}

impl Engine {
    fn data_oram(&self) -> &RingOram {
        match self {
            Engine::Flat { oram, .. } => oram,
            Engine::Recursive { stack, .. } => stack.oram(0),
        }
    }
}

/// The integrated String ORAM system simulator: cores, ORAM controller,
/// memory controller and DRAM advanced in lockstep.
///
/// # Examples
///
/// ```
/// use string_oram::{Simulation, SystemConfig, Scheme};
/// use trace_synth::{TraceGenerator, by_name};
///
/// let cfg = SystemConfig::test_small(Scheme::All);
/// let traces = (0..cfg.cores)
///     .map(|c| TraceGenerator::new(by_name("black").unwrap(), 1, c as u32).take_records(50))
///     .collect();
/// let mut sim = Simulation::new(cfg, traces);
/// let report = sim.run(10_000_000).unwrap();
/// assert!(report.oram_accesses >= 100);
/// ```
#[derive(Debug)]
pub struct Simulation {
    cfg: SystemConfig,
    cores: Vec<Core>,
    engine: Engine,
    memctrl: MemoryController,
    /// FIFO of memory operations emitted by cores, awaiting ORAM planning.
    core_requests: VecDeque<CoreRequest>,
    /// Planned requests awaiting queue space, in strict transaction order.
    enqueue_fifo: VecDeque<PendingSpec>,
    /// Unfinished transactions, keyed by id (ordered: oldest first).
    txns: BTreeMap<u64, TxnState>,
    next_txn: u64,
    /// Pending per-core completion times (one entry per in-flight miss
    /// whose data has a known arrival cycle).
    core_unblock_at: Vec<Vec<u64>>,
    cycle: u64,
    cycles_by_kind: KindCycles,
    row_class_by_kind: BTreeMap<&'static str, RowClassCounts>,
    transactions_by_kind: BTreeMap<&'static str, u64>,
    oram_accesses: u64,
    /// Cycles during which the oldest in-flight transaction was a fault
    /// retry (the latency cost of recovery, reported separately).
    retry_cycles: u64,
    /// Completion latency of every program read path, in cycles from plan
    /// to data availability (for the latency percentiles in the report).
    read_latencies: Vec<u64>,
    /// Snapshot delimiting the measurement window, if one was begun.
    measurement_start: Option<MeasurementStart>,
    label: String,
    /// Shadow JEDEC timing checker (per `cfg.verify.shadow_timing`).
    shadow: Option<sim_verify::ShadowTimingChecker>,
    /// Streaming transaction-order contract checker (with the shadow).
    txn_order: Option<sim_verify::TxnOrderChecker>,
    /// Ring ORAM invariant auditor (per `cfg.verify.oram_audit`).
    auditor: Option<sim_verify::OramAuditor>,
    /// Conformance violations accumulated so far (see `cfg.verify`).
    violations: Vec<sim_verify::Violation>,
}

impl Simulation {
    /// Builds a simulation of `cfg` running one trace per core.
    ///
    /// Thin wrapper over [`Self::try_new`] for callers that treat a bad
    /// configuration as a bug.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation or the number of traces does not
    /// match `cfg.cores`.
    #[must_use]
    pub fn new(cfg: SystemConfig, traces: Vec<Vec<TraceRecord>>) -> Self {
        match Self::try_new(cfg, traces) {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a simulation of `cfg` running one trace per core, reporting
    /// configuration problems instead of panicking.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Invalid`] if `cfg` fails validation (including the
    /// fault-injection cross-checks) and [`ConfigError::TraceCount`] if
    /// the number of traces does not match `cfg.cores`.
    pub fn try_new(cfg: SystemConfig, traces: Vec<Vec<TraceRecord>>) -> Result<Self, ConfigError> {
        cfg.validate().map_err(ConfigError::Invalid)?;
        if traces.len() != cfg.cores {
            return Err(ConfigError::TraceCount {
                expected: cfg.cores,
                got: traces.len(),
            });
        }
        let cores: Vec<Core> = traces
            .into_iter()
            .enumerate()
            .map(|(i, t)| Core::with_mlp(i, t, cfg.core_mlp))
            .collect();
        let mk_layout = |ring: &ring_oram::RingConfig| -> Box<dyn TreeLayout> {
            match cfg.layout {
                crate::config::LayoutKind::Subtree => {
                    Box::new(SubtreeLayout::new(ring, cfg.row_set_bytes()))
                }
                crate::config::LayoutKind::Naive => Box::new(NaiveLayout::new(ring)),
            }
        };
        let engine = match cfg.recursion {
            None => {
                let mut oram = Box::new(RingOram::with_load_factor(
                    cfg.ring.clone(),
                    cfg.seed,
                    cfg.load_factor,
                ));
                if let Some(f) = &cfg.faults {
                    // Integrity-fault detection needs the authenticated
                    // cipher in the loop.
                    oram.enable_encryption(cfg.seed ^ 0xC1F3);
                    oram.enable_resilience(f.resilience);
                }
                Engine::Flat {
                    oram,
                    layout: mk_layout(&cfg.ring),
                }
            }
            Some(r) => {
                let rec_cfg = RecursiveConfig {
                    data: cfg.ring.clone(),
                    tracked_blocks: r.tracked_blocks,
                    positions_per_block: r.positions_per_block,
                    max_onchip_entries: r.max_onchip_entries,
                };
                let stack = Box::new(RecursiveOram::new(rec_cfg.clone(), cfg.seed));
                // Allocate disjoint, row-set-aligned regions: data ORAM at
                // 0, each map ORAM after the previous region.
                let mut regions: Vec<(Box<dyn TreeLayout>, u64)> = Vec::new();
                let align = cfg.row_set_bytes();
                let mut base = 0u64;
                let push =
                    |ring: &ring_oram::RingConfig,
                     base: &mut u64,
                     regions: &mut Vec<(Box<dyn TreeLayout>, u64)>| {
                        let l = mk_layout(ring);
                        let total = l.total_bytes().div_ceil(align) * align;
                        regions.push((l, *base));
                        *base += total;
                    };
                push(&cfg.ring, &mut base, &mut regions);
                for i in 0..rec_cfg.map_levels() {
                    push(&rec_cfg.map_config(i), &mut base, &mut regions);
                }
                if base > cfg.geometry.capacity_bytes() {
                    return Err(ConfigError::Invalid(format!(
                        "recursive ORAM stack ({base} B) exceeds DRAM capacity"
                    )));
                }
                Engine::Recursive { stack, regions }
            }
        };
        let mapping = match cfg.mapping {
            crate::config::MappingKind::PaperStriped => AddressMapping::hpca_default(&cfg.geometry),
            crate::config::MappingKind::Sequential => AddressMapping::sequential(&cfg.geometry),
        };
        let mut dram = DramModule::new(cfg.geometry.clone(), cfg.timing.clone());
        if let Some(f) = &cfg.faults {
            dram.enable_faults(f.dram);
        }
        let mut memctrl = MemoryController::new(dram, mapping, cfg.policy, cfg.queue_capacity);
        memctrl.set_page_policy(cfg.page_policy);
        if let Some(f) = &cfg.faults {
            memctrl.enable_response_faults(f.memctrl);
        }
        let (shadow, txn_order) = if cfg.verify.shadow_timing {
            memctrl.enable_command_trace();
            (
                Some(sim_verify::ShadowTimingChecker::new(
                    cfg.geometry.clone(),
                    cfg.timing.clone(),
                )),
                Some(sim_verify::TxnOrderChecker::new()),
            )
        } else {
            (None, None)
        };
        let auditor = cfg
            .verify
            .oram_audit
            .then(|| sim_verify::OramAuditor::new(cfg.ring.clone()));
        let n = cfg.cores;
        Ok(Self {
            cfg,
            cores,
            engine,
            memctrl,
            core_requests: VecDeque::new(),
            enqueue_fifo: VecDeque::new(),
            txns: BTreeMap::new(),
            next_txn: 0,
            core_unblock_at: vec![Vec::new(); n],
            cycle: 0,
            cycles_by_kind: KindCycles::default(),
            row_class_by_kind: BTreeMap::new(),
            transactions_by_kind: BTreeMap::new(),
            oram_accesses: 0,
            retry_cycles: 0,
            read_latencies: Vec::new(),
            measurement_start: None,
            label: String::new(),
            shadow,
            txn_order,
            auditor,
            violations: Vec::new(),
        })
    }

    /// Sets the report label (workload / scheme).
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = label.into();
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The (data) protocol engine, for inspection in tests and harnesses.
    #[must_use]
    pub fn oram(&self) -> &RingOram {
        self.engine.data_oram()
    }

    /// Program accesses planned so far (cheap mid-run progress probe).
    #[must_use]
    pub fn oram_accesses(&self) -> u64 {
        self.oram_accesses
    }

    /// Memory-bus cycles elapsed so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Whether every core finished its trace and all memory work drained.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.cores.iter().all(Core::is_done)
            && self.core_requests.is_empty()
            && self.enqueue_fifo.is_empty()
            && self.txns.is_empty()
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// [`CycleLimitExceeded`] if completion needs more than `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> Result<SimReport, CycleLimitExceeded> {
        while !self.is_finished() {
            if self.cycle >= max_cycles {
                return Err(CycleLimitExceeded { limit: max_cycles });
            }
            self.step();
        }
        Ok(self.report())
    }

    /// Advances the system by one memory-bus cycle.
    pub fn step(&mut self) {
        let cycle = self.cycle;

        // 1. Release cores whose data arrived.
        for core in 0..self.cores.len() {
            let pending = &mut self.core_unblock_at[core];
            let before = pending.len();
            pending.retain(|&at| at > cycle);
            for _ in pending.len()..before {
                self.cores[core].complete_memory_op();
            }
        }

        // 2. Advance cores; collect new LLC misses.
        let budget = self.cfg.instructions_per_mem_cycle();
        for core in &mut self.cores {
            if let Some(req) = core.tick(budget) {
                self.core_requests.push_back(req);
            }
        }

        // 3. ORAM controller: plan accesses while the transaction window
        //    has room (keeps transaction i+1 visible for PB).
        while self.txns.len() < self.cfg.max_inflight_txns {
            let Some(req) = self.core_requests.pop_front() else {
                break;
            };
            self.plan_access(req);
        }

        // 4. Feed the memory controller in strict transaction order.
        while let Some(head) = self.enqueue_fifo.front().copied() {
            match self.memctrl.try_enqueue(head.spec, cycle) {
                Ok(id) => {
                    if head.is_target {
                        if let Some(t) = self.txns.get_mut(&head.txn.0) {
                            t.target_req_id = Some(id);
                        }
                    }
                    self.enqueue_fifo.pop_front();
                }
                Err(_) => break, // queue full: retry next cycle
            }
        }

        // 5. Schedule DRAM commands.
        self.memctrl.tick(cycle);

        // 5b. Conformance: re-validate what just issued against the shadow
        // JEDEC rules and the transaction-order contract.
        if self.shadow.is_some() {
            for ev in self.memctrl.take_command_events() {
                if let Some(shadow) = &mut self.shadow {
                    shadow.observe(ev.cycle, ev.cmd);
                }
                if let Some(order) = &mut self.txn_order {
                    order.observe(&ev);
                }
            }
            self.collect_violations();
        }

        // 6. Retire completed requests.
        for done in self.memctrl.drain_completed() {
            let Some(t) = self.txns.get_mut(&done.txn.0) else {
                continue;
            };
            t.outstanding -= 1;
            self.row_class_by_kind
                .entry(t.kind.label())
                .or_default()
                .add(done.class);
            if t.target_req_id == Some(done.id) {
                if let Some(core) = t.waiting_core.take() {
                    let at = done.data_done_at.max(cycle + 1);
                    self.core_unblock_at[core].push(at);
                    self.read_latencies.push(at - t.planned_at);
                }
            }
            if t.outstanding == 0 {
                if let Some(core) = t.waiting_core.take() {
                    // Stash / tree-top / first-touch hits release here.
                    debug_assert!(t.release_on_completion);
                    let at = done.data_done_at.max(cycle + 1);
                    self.core_unblock_at[core].push(at);
                    self.read_latencies.push(at - t.planned_at);
                }
                self.txns.remove(&done.txn.0);
            }
        }

        // 7. Attribute this cycle to the oldest unfinished transaction.
        let oldest_kind = self.txns.values().next().map(|t| t.kind);
        self.cycles_by_kind.add(oldest_kind);
        if oldest_kind == Some(OpKind::RetryRead) {
            self.retry_cycles += 1;
        }

        self.cycle += 1;
    }

    /// Expands one core request into ORAM transactions. Under recursion the
    /// position-map ORAM accesses precede the data access; only the data
    /// ORAM's read path carries the core's wakeup.
    fn plan_access(&mut self, req: CoreRequest) {
        self.oram_accesses += 1;
        match &mut self.engine {
            Engine::Flat { oram, .. } => {
                let outcome = oram.access(BlockId(req.block));
                let served_from_tree = matches!(outcome.source, ring_oram::TargetSource::Tree(_));
                // Drain the fault log unconditionally (bounds protocol-side
                // memory); the auditor replays it before the plans so retry
                // allowances exist when the plans are checked.
                let faults = oram.take_fault_events();
                if let Some(auditor) = &mut self.auditor {
                    auditor.observe_faults(&faults);
                    auditor.observe_access(&outcome.plans);
                    auditor.observe_stash(oram.stash_len());
                }
                let plans = outcome.plans;
                // The core's data arrives with the *last* plan carrying a
                // target touch: normally the read path, but a corrupted
                // target fetch is only whole after its retry plan.
                let wake_idx = plans
                    .iter()
                    .rposition(|p| {
                        matches!(p.kind, OpKind::ReadPath | OpKind::RetryRead)
                            && p.target_index.is_some()
                    })
                    .or_else(|| plans.iter().rposition(|p| p.kind == OpKind::ReadPath));
                for (i, plan) in plans.into_iter().enumerate() {
                    let waiting = (Some(i) == wake_idx).then_some((req.core, served_from_tree));
                    self.push_plan(plan, 0, waiting);
                }
            }
            Engine::Recursive { stack, .. } => {
                let steps = stack.access(BlockId(req.block));
                let stash_len = stack.oram(0).stash_len();
                for step in steps {
                    let waiting = if step.oram_index == 0 {
                        let from_tree =
                            matches!(step.outcome.source, ring_oram::TargetSource::Tree(_));
                        Some((req.core, from_tree))
                    } else {
                        None
                    };
                    // Only the data ORAM (index 0) is audited; the map
                    // ORAMs run the same protocol with their own configs.
                    if step.oram_index == 0 {
                        if let Some(auditor) = &mut self.auditor {
                            auditor.observe_access(&step.outcome.plans);
                        }
                    }
                    for plan in step.outcome.plans {
                        self.push_plan(plan, step.oram_index, waiting);
                    }
                }
                if let Some(auditor) = &mut self.auditor {
                    auditor.observe_stash(stash_len);
                }
            }
        }
        self.collect_violations();
    }

    /// Moves any fresh checker findings into the violation log; with
    /// `fail_fast` the first finding panics instead (the negative-test
    /// hook: an injected scheduler or protocol bug must abort the run).
    fn collect_violations(&mut self) {
        let mut fresh = Vec::new();
        if let Some(shadow) = &mut self.shadow {
            fresh.extend(shadow.take_violations());
        }
        if let Some(order) = &mut self.txn_order {
            fresh.extend(order.take_violations());
        }
        if let Some(auditor) = &mut self.auditor {
            fresh.extend(auditor.take_violations());
        }
        if self.cfg.verify.fail_fast {
            if let Some(v) = fresh.first() {
                panic!("conformance violation: {v}");
            }
        }
        self.violations.extend(fresh);
    }

    /// Conformance violations found so far (empty when checking is off —
    /// or when the simulated machine is behaving).
    #[must_use]
    pub fn violations(&self) -> &[sim_verify::Violation] {
        &self.violations
    }

    /// Registers one transaction: assigns an id, converts slot touches to
    /// physical requests in the right memory region and records who waits.
    fn push_plan(&mut self, plan: AccessPlan, oram_index: usize, waiting: Option<(usize, bool)>) {
        let txn = TxnId(self.next_txn);
        self.next_txn += 1;
        *self
            .transactions_by_kind
            .entry(plan.kind.label())
            .or_default() += 1;

        let mut state = TxnState {
            kind: plan.kind,
            planned_at: self.cycle,
            outstanding: plan.touches.len(),
            waiting_core: None,
            target_req_id: None,
            release_on_completion: false,
        };
        let is_program_read = match waiting {
            Some((core, served_from_tree))
                if matches!(plan.kind, OpKind::ReadPath | OpKind::RetryRead) =>
            {
                state.waiting_core = Some(core);
                state.release_on_completion = !(served_from_tree && plan.target_index.is_some());
                true
            }
            _ => false,
        };
        for (i, touch) in plan.touches.iter().enumerate() {
            let addr = match &self.engine {
                Engine::Flat { layout, .. } => PhysAddr(layout.addr_of(touch.bucket, touch.slot)),
                Engine::Recursive { regions, .. } => {
                    let (layout, base) = &regions[oram_index];
                    PhysAddr(base + layout.addr_of(touch.bucket, touch.slot))
                }
            };
            self.enqueue_fifo.push_back(PendingSpec {
                txn,
                spec: RequestSpec {
                    addr,
                    is_write: touch.write,
                    txn,
                },
                is_target: is_program_read && plan.target_index == Some(i),
            });
        }
        if state.outstanding == 0 {
            // Degenerate (fully on-chip) transaction: complete at once.
            if let Some(core) = state.waiting_core {
                self.core_unblock_at[core].push(self.cycle + 1);
            }
        } else {
            self.txns.insert(txn.0, state);
        }
    }

    /// Starts the measurement window: everything simulated so far becomes
    /// warm-up and is excluded from [`Self::report`]'s counters and rates.
    /// May be called at most once, typically after stepping through a
    /// warm-up prefix of the trace.
    ///
    /// # Panics
    ///
    /// Panics if a measurement window was already begun.
    pub fn begin_measurement(&mut self) {
        assert!(
            self.measurement_start.is_none(),
            "measurement window already begun"
        );
        let sched = self.memctrl.stats().clone();
        let dram = self.memctrl.dram();
        self.measurement_start = Some(MeasurementStart {
            cycle: self.cycle,
            instructions: self.cores.iter().map(Core::instructions_retired).sum(),
            oram_accesses: self.oram_accesses,
            cycles_by_kind: self.cycles_by_kind,
            transactions_by_kind: self.transactions_by_kind.clone(),
            row_class_by_kind: self.row_class_by_kind.clone(),
            dram: dram.stats().clone(),
            bank_busy: dram.bank_busy_cycles(),
            refreshes: dram.total_refreshes(),
            protocol: self.engine.data_oram().stats().clone(),
            read_latency_idx: self.read_latencies.len(),
            retry_cycles: self.retry_cycles,
            refresh_storms: dram.total_refresh_storms(),
            weak_row_stalls: dram.weak_row_stalls(),
            sched,
        });
    }

    /// Builds the final report (also callable mid-run for progress). When a
    /// measurement window is active, every counter and rate covers only the
    /// window (see [`Self::begin_measurement`]).
    #[must_use]
    pub fn report(&self) -> SimReport {
        let full_sched = self.memctrl.stats();
        let dram = self.memctrl.dram();
        let start = self.measurement_start.as_ref();

        let sched = match start {
            Some(m) => full_sched.delta(&m.sched),
            None => full_sched.clone(),
        };
        let dram_stats = match start {
            Some(m) => dram.stats().delta(&m.dram),
            None => dram.stats().clone(),
        };
        let base_cycle = start.map_or(0, |m| m.cycle);
        let elapsed = self.cycle - base_cycle;
        let protocol = match start {
            Some(m) => self.engine.data_oram().stats().delta(&m.protocol),
            None => self.engine.data_oram().stats().clone(),
        };
        let mut cycles_by_kind = self.cycles_by_kind;
        let mut transactions_by_kind = self.transactions_by_kind.clone();
        let mut row_class_by_kind = self.row_class_by_kind.clone();
        let mut instructions: u64 = self.cores.iter().map(Core::instructions_retired).sum();
        let mut oram_accesses = self.oram_accesses;
        let mut latencies: &[u64] = &self.read_latencies;
        let bank_idle = match start {
            Some(m) => {
                cycles_by_kind = KindCycles {
                    read: cycles_by_kind.read - m.cycles_by_kind.read,
                    evict: cycles_by_kind.evict - m.cycles_by_kind.evict,
                    reshuffle: cycles_by_kind.reshuffle - m.cycles_by_kind.reshuffle,
                    other: cycles_by_kind.other - m.cycles_by_kind.other,
                };
                for (k, v) in &m.transactions_by_kind {
                    *transactions_by_kind.entry(k).or_default() -= v;
                }
                for (k, v) in &m.row_class_by_kind {
                    let e = row_class_by_kind.entry(k).or_default();
                    e.hits -= v.hits;
                    e.misses -= v.misses;
                    e.conflicts -= v.conflicts;
                }
                instructions -= m.instructions;
                oram_accesses -= m.oram_accesses;
                latencies = &self.read_latencies[m.read_latency_idx..];
                // Idle over the window: per-bank busy delta vs elapsed.
                let busy_now = dram.bank_busy_cycles();
                if elapsed == 0 {
                    0.0
                } else {
                    let total: f64 = busy_now
                        .iter()
                        .zip(&m.bank_busy)
                        .map(|(&b, &b0)| 1.0 - ((b - b0).min(elapsed) as f64 / elapsed as f64))
                        .sum();
                    total / busy_now.len() as f64
                }
            }
            None => dram.average_bank_idle_proportion(self.cycle),
        };
        let refreshes = dram.total_refreshes() - start.map_or(0, |m| m.refreshes);
        let resilience = crate::report::ResilienceSummary {
            faults_injected: protocol.faults_injected,
            faults_detected: protocol.faults_detected,
            fault_retries: protocol.fault_retries,
            faults_recovered: protocol.faults_recovered,
            faults_unrecovered: protocol.faults_unrecovered,
            degraded_entries: protocol.degraded_entries,
            degraded_exits: protocol.degraded_exits,
            background_escalations: protocol.background_escalations,
            retry_cycles: self.retry_cycles - start.map_or(0, |m| m.retry_cycles),
            responses_delayed: sched.responses_delayed,
            responses_dropped: sched.responses_dropped,
            queue_saturation_windows: sched.queue_saturation_windows,
            refresh_storms: dram.total_refresh_storms() - start.map_or(0, |m| m.refresh_storms),
            weak_row_stalls: dram.weak_row_stalls() - start.map_or(0, |m| m.weak_row_stalls),
        };

        SimReport {
            label: self.label.clone(),
            total_cycles: elapsed,
            cycles_by_kind,
            instructions,
            oram_accesses,
            transactions_by_kind,
            row_class_by_kind,
            mean_read_queue_wait: sched.mean_read_queue_wait(),
            mean_write_queue_wait: sched.mean_write_queue_wait(),
            mean_queue_occupancy: sched.mean_queue_occupancy(),
            bank_idle_proportion: bank_idle,
            pending_bank_idle_proportion: sched.pending_bank_idle_proportion(),
            early_precharge_fraction: sched.early_precharge_fraction(),
            early_activate_fraction: sched.early_activate_fraction(),
            protocol,
            resilience,
            requests_completed: sched.reads_completed + sched.writes_completed,
            channel_imbalance: sched.channel_imbalance(),
            read_latency: crate::report::LatencyPercentiles::from_samples(latencies),
            violations: self.violations.iter().map(ToString::to_string).collect(),
            energy: dram_sim::power::energy(
                &dram_sim::power::PowerParams::ddr3_1600(),
                dram.timing(),
                &dram_stats,
                self.cfg.geometry.channels * self.cfg.geometry.ranks_per_channel,
                elapsed,
                sched.open_bank_fraction(),
                refreshes,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use trace_synth::by_name;
    use trace_synth::TraceGenerator;

    fn traces(cfg: &SystemConfig, n: usize, workload: &str) -> Vec<Vec<TraceRecord>> {
        (0..cfg.cores)
            .map(|c| TraceGenerator::new(by_name(workload).unwrap(), 11, c as u32).take_records(n))
            .collect()
    }

    fn run(scheme: Scheme, n: usize) -> SimReport {
        let cfg = SystemConfig::test_small(scheme);
        let t = traces(&cfg, n, "black");
        let mut sim = Simulation::new(cfg, t);
        sim.run(50_000_000).expect("run completes")
    }

    #[test]
    fn baseline_completes_and_accounts_every_cycle() {
        let r = run(Scheme::Baseline, 60);
        assert_eq!(r.oram_accesses, 120); // 2 cores x 60 records
        assert_eq!(r.cycles_by_kind.total(), r.total_cycles);
        assert!(r.total_cycles > 0);
        assert!(r.requests_completed > 0);
        assert!(r.instructions > 0);
    }

    #[test]
    fn read_paths_conflict_more_than_evictions() {
        // The paper's Fig. 5(b): selective reads defeat the subtree layout,
        // full-path evictions exploit it.
        let r = run(Scheme::Baseline, 150);
        let read = r.row_class(OpKind::ReadPath);
        let evict = r.row_class(OpKind::Eviction);
        assert!(read.total() > 0 && evict.total() > 0);
        assert!(
            read.conflict_rate() > evict.conflict_rate(),
            "read {:.2} vs evict {:.2}",
            read.conflict_rate(),
            evict.conflict_rate()
        );
    }

    #[test]
    fn pb_is_faster_than_baseline() {
        let base = run(Scheme::Baseline, 150);
        let pb = run(Scheme::Pb, 150);
        assert!(
            pb.total_cycles < base.total_cycles,
            "PB {} vs baseline {}",
            pb.total_cycles,
            base.total_cycles
        );
        assert!(pb.early_precharge_fraction > 0.0);
        assert!(pb.early_activate_fraction > 0.0);
        assert_eq!(base.early_precharge_fraction, 0.0);
    }

    #[test]
    fn cb_is_faster_than_baseline() {
        let base = run(Scheme::Baseline, 150);
        let cb = run(Scheme::Cb, 150);
        assert!(
            cb.total_cycles < base.total_cycles,
            "CB {} vs baseline {}",
            cb.total_cycles,
            base.total_cycles
        );
        assert!(cb.protocol.greens_fetched > 0);
    }

    #[test]
    fn all_is_fastest() {
        let base = run(Scheme::Baseline, 150);
        let cb = run(Scheme::Cb, 150);
        let pb = run(Scheme::Pb, 150);
        let all = run(Scheme::All, 150);
        assert!(all.total_cycles < base.total_cycles);
        assert!(all.total_cycles <= cb.total_cycles);
        assert!(all.total_cycles <= pb.total_cycles);
    }

    #[test]
    fn pb_reduces_bank_idle_time() {
        let base = run(Scheme::Baseline, 150);
        let pb = run(Scheme::Pb, 150);
        assert!(
            pb.bank_idle_proportion < base.bank_idle_proportion,
            "PB idle {:.3} vs baseline {:.3}",
            pb.bank_idle_proportion,
            base.bank_idle_proportion
        );
    }

    #[test]
    fn pb_preserves_row_class_counts() {
        // The security argument: PB changes *when* PRE/ACT go out, never
        // how many requests conflict.
        let base = run(Scheme::Baseline, 100);
        let pb = run(Scheme::Pb, 100);
        for kind in ["read", "evict"] {
            let b = base
                .row_class_by_kind
                .get(kind)
                .copied()
                .unwrap_or_default();
            let p = pb.row_class_by_kind.get(kind).copied().unwrap_or_default();
            assert_eq!(b.total(), p.total(), "{kind}: request counts differ");
        }
    }

    #[test]
    fn deterministic_runs() {
        let a = run(Scheme::All, 60);
        let b = run(Scheme::All, 60);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.requests_completed, b.requests_completed);
    }

    #[test]
    fn eviction_fires_at_the_paper_rate() {
        let r = run(Scheme::Baseline, 160);
        let evicts = *r.transactions_by_kind.get("evict").unwrap_or(&0);
        let reads = *r.transactions_by_kind.get("read").unwrap_or(&0);
        // One eviction per A = 8 read paths (within one in-flight access).
        let expected = reads / 8;
        assert!(
            (evicts as i64 - expected as i64).unsigned_abs() <= 1,
            "evictions {evicts} vs expected {expected}"
        );
    }

    #[test]
    fn recursion_generates_extra_transactions_and_slows_down() {
        let flat = run(Scheme::Baseline, 60);
        let mut cfg = SystemConfig::test_small(Scheme::Baseline);
        cfg.recursion = Some(crate::config::RecursionSettings {
            tracked_blocks: 1 << 12,
            positions_per_block: 8,
            max_onchip_entries: 1 << 6,
        });
        let t = traces(&cfg, 60, "black");
        let mut sim = Simulation::new(cfg, t);
        let rec = sim.run(100_000_000).expect("completes");
        sim.oram().check_invariants();
        assert_eq!(rec.oram_accesses, flat.oram_accesses);
        assert!(
            rec.transactions_by_kind["read"] > flat.transactions_by_kind["read"],
            "map ORAM read paths must appear"
        );
        assert!(
            rec.total_cycles > flat.total_cycles,
            "recursion costs time: {} vs {}",
            rec.total_cycles,
            flat.total_cycles
        );
    }

    #[test]
    fn measurement_window_excludes_warmup() {
        let cfg = SystemConfig::test_small(Scheme::All);
        let t = traces(&cfg, 120, "black");
        let mut sim = Simulation::new(cfg, t);
        // Warm up through half the accesses, then measure the rest.
        while sim.oram_accesses() < 120 && !sim.is_finished() {
            sim.step();
        }
        // A step may plan more than one access; capture the actual count.
        let warmed = sim.oram_accesses();
        sim.begin_measurement();
        let at_start = sim.report();
        assert_eq!(at_start.oram_accesses, 0, "window starts empty");
        assert_eq!(at_start.total_cycles, 0);
        assert_eq!(at_start.requests_completed, 0);
        while !sim.is_finished() {
            sim.step();
        }
        let r = sim.report();
        assert_eq!(r.oram_accesses, 240 - warmed, "rest measured");
        assert!(r.total_cycles > 0);
        assert_eq!(r.cycles_by_kind.total(), r.total_cycles);
        let classified: u64 = r.row_class_by_kind.values().map(|c| c.total()).sum();
        assert_eq!(classified, r.requests_completed);
        assert!(r.instructions > 0);
        assert!(r.energy.total_uj() > 0.0);
        assert!(r.bank_idle_proportion > 0.0 && r.bank_idle_proportion < 1.0);
    }

    #[test]
    #[should_panic(expected = "already begun")]
    fn measurement_window_is_single_use() {
        let cfg = SystemConfig::test_small(Scheme::Baseline);
        let t = traces(&cfg, 10, "black");
        let mut sim = Simulation::new(cfg, t);
        sim.begin_measurement();
        sim.begin_measurement();
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let cfg = SystemConfig::test_small(Scheme::Baseline);
        let t = traces(&cfg, 200, "black");
        let mut sim = Simulation::new(cfg, t);
        let err = sim.run(10).unwrap_err();
        assert_eq!(err, CycleLimitExceeded { limit: 10 });
    }
}
