//! The full-system simulator: cores → ORAM controller → memory backend,
//! advanced in lockstep at memory-bus granularity.
//!
//! [`Simulation`] is a thin composition of the staged transaction pipeline
//! in [`crate::pipeline`]: each cycle runs **Plan → Enqueue → Schedule →
//! Retire → Attribute** over a pluggable [`mem_sched::MemoryBackend`]. The
//! stage logic itself lives with the stages; this module owns only the
//! cores, the cycle loop and the measurement window.

use std::collections::VecDeque;

use mem_sched::MemoryBackend;
use ring_oram::{ObliviousProtocol, RingOram};
use trace_synth::TraceRecord;

use crate::config::{ConfigError, SystemConfig};
use crate::cpu::{Core, CoreRequest};
use crate::pipeline::{
    build_backend, build_report, Conformance, CounterSnapshot, Metrics, Planner, TxnTracker, Wake,
};
use crate::report::SimReport;

/// Error returned when a run exceeds its cycle budget (wedged or just too
/// slow for the limit given). Carries the partial [`SimReport`] at the
/// cutoff so the progress made is diagnosable rather than discarded.
#[derive(Debug, Clone)]
pub struct CycleLimitExceeded {
    /// The limit that was hit.
    pub limit: u64,
    /// The cycle at which the run stopped.
    pub cycle: u64,
    /// Everything measured up to the cutoff (respects any measurement
    /// window begun before the limit was hit).
    pub partial: Box<SimReport>,
}

impl std::fmt::Display for CycleLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation exceeded {} cycles ({} ORAM accesses planned, {} instructions retired \
             at cutoff)",
            self.limit, self.partial.oram_accesses, self.partial.instructions
        )
    }
}

impl std::error::Error for CycleLimitExceeded {}

/// The integrated String ORAM system simulator: cores, ORAM controller and
/// memory backend advanced in lockstep.
///
/// # Examples
///
/// ```
/// use string_oram::{Simulation, SystemConfig, Scheme};
/// use trace_synth::{TraceGenerator, by_name};
///
/// let cfg = SystemConfig::test_small(Scheme::All);
/// let traces = (0..cfg.cores)
///     .map(|c| TraceGenerator::new(by_name("black").unwrap(), 1, c as u32).take_records(50))
///     .collect();
/// let mut sim = Simulation::new(cfg, traces);
/// let report = sim.run(10_000_000).unwrap();
/// assert!(report.oram_accesses >= 100);
/// ```
#[derive(Debug)]
pub struct Simulation {
    cfg: SystemConfig,
    cores: Vec<Core>,
    /// Stage 1: protocol planning and address lowering.
    planner: Planner,
    /// Stages 2 & 4: transaction admission, ordered enqueue, retirement.
    tracker: TxnTracker,
    /// Stage 3: the pluggable memory model.
    backend: Box<dyn MemoryBackend>,
    /// Stage 5: per-cycle attribution counters.
    metrics: Metrics,
    /// Passive conformance checking beside the stages.
    conformance: Conformance,
    /// FIFO of memory operations emitted by cores, awaiting ORAM planning.
    core_requests: VecDeque<CoreRequest>,
    /// Pending per-core completion times (one entry per in-flight miss
    /// whose data has a known arrival cycle).
    core_unblock_at: Vec<Vec<u64>>,
    /// Reusable buffer for draining backend completions each cycle.
    retired_scratch: Vec<mem_sched::Completed>,
    /// Reusable buffer for the planner's lowered transactions each cycle.
    planned_scratch: Vec<crate::pipeline::PlannedTxn>,
    cycle: u64,
    /// Snapshot delimiting the measurement window, if one was begun.
    measurement_start: Option<CounterSnapshot>,
    label: String,
}

impl Simulation {
    /// Builds a simulation of `cfg` running one trace per core.
    ///
    /// Thin wrapper over [`Self::try_new`] for callers that treat a bad
    /// configuration as a bug.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation or the number of traces does not
    /// match `cfg.cores`.
    #[must_use]
    pub fn new(cfg: SystemConfig, traces: Vec<Vec<TraceRecord>>) -> Self {
        match Self::try_new(cfg, traces) {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a simulation of `cfg` running one trace per core, reporting
    /// configuration problems instead of panicking.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Invalid`] if `cfg` fails validation (including the
    /// fault-injection cross-checks) and [`ConfigError::TraceCount`] if
    /// the number of traces does not match `cfg.cores`.
    pub fn try_new(cfg: SystemConfig, traces: Vec<Vec<TraceRecord>>) -> Result<Self, ConfigError> {
        cfg.validate()?;
        if cfg.shards != 1 {
            return Err(ConfigError::Invalid(format!(
                "Simulation is the single-instance pipeline; use ShardedSimulation for \
                 shards = {}",
                cfg.shards
            )));
        }
        if traces.len() != cfg.cores {
            return Err(ConfigError::TraceCount {
                expected: cfg.cores,
                got: traces.len(),
            });
        }
        let total_records: usize = traces.iter().map(Vec::len).sum();
        let cores: Vec<Core> = traces
            .into_iter()
            .enumerate()
            .map(|(i, t)| Core::with_mlp(i, t, cfg.core_mlp))
            .collect();
        let mut planner = Planner::build(&cfg)?;
        // Pre-size the per-access growth vectors so the steady state never
        // reallocates them mid-run.
        planner.reserve_accesses(total_records);
        let mut metrics = Metrics::new();
        metrics.read_latencies.reserve(total_records);
        let mut backend = build_backend(&cfg);
        let conformance = Conformance::new(
            &cfg.verify,
            cfg.protocol,
            &cfg.effective_ring(),
            &cfg.geometry,
            &cfg.timing,
            backend.dram_module().is_some(),
            cfg.sched_policy.name(),
        );
        if conformance.stream_enabled() {
            backend.enable_command_trace();
        }
        let n = cfg.cores;
        Ok(Self {
            cfg,
            cores,
            planner,
            tracker: TxnTracker::new(),
            backend,
            metrics,
            conformance,
            core_requests: VecDeque::new(),
            core_unblock_at: vec![Vec::new(); n],
            retired_scratch: Vec::new(),
            planned_scratch: Vec::new(),
            cycle: 0,
            measurement_start: None,
            label: String::new(),
        })
    }

    /// Sets the report label (workload / scheme).
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = label.into();
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The (data) protocol engine, for protocol-agnostic inspection in
    /// tests and harnesses (any of the four protocol design points).
    #[must_use]
    pub fn protocol(&self) -> &dyn ObliviousProtocol {
        self.planner.protocol()
    }

    /// The data engine as a [`RingOram`], for Ring-specific inspection (CB
    /// counters, fault layer). Prefer [`Self::protocol`] in
    /// protocol-agnostic code.
    ///
    /// # Panics
    ///
    /// Panics when the configured protocol is not Ring-based — use
    /// [`Self::protocol`] there.
    #[must_use]
    pub fn oram(&self) -> &RingOram {
        self.planner.data_oram()
    }

    /// Program accesses planned so far (cheap mid-run progress probe).
    #[must_use]
    pub fn oram_accesses(&self) -> u64 {
        self.planner.accesses()
    }

    /// Running FNV-1a digest of the planned access sequence: transaction
    /// kinds, physical addresses and directions, in order. Backends cannot
    /// influence it — two backends driving the same trace must agree (the
    /// `backend_differential` test's oracle).
    #[must_use]
    pub fn access_digest(&self) -> u64 {
        self.planner.digest()
    }

    /// Memory-bus cycles elapsed so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Whether every core finished its trace and all memory work drained.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.cores.iter().all(Core::is_done)
            && self.core_requests.is_empty()
            && self.tracker.is_drained()
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// [`CycleLimitExceeded`] if completion needs more than `max_cycles`;
    /// the error carries the partial report at the cutoff.
    pub fn run(&mut self, max_cycles: u64) -> Result<SimReport, CycleLimitExceeded> {
        while !self.is_finished() {
            if self.cycle >= max_cycles {
                return Err(CycleLimitExceeded {
                    limit: max_cycles,
                    cycle: self.cycle,
                    partial: Box::new(self.report()),
                });
            }
            self.step();
        }
        Ok(self.report())
    }

    /// Advances the system by one memory-bus cycle through the five
    /// pipeline stages (plan, enqueue, schedule, retire, attribute).
    pub fn step(&mut self) {
        let cycle = self.cycle;

        // 0. Release cores whose data arrived.
        for core in 0..self.cores.len() {
            let pending = &mut self.core_unblock_at[core];
            let before = pending.len();
            pending.retain(|&at| at > cycle);
            for _ in pending.len()..before {
                self.cores[core].complete_memory_op();
            }
        }

        // 0b. Advance cores; collect new LLC misses.
        let budget = self.cfg.instructions_per_mem_cycle();
        for core in &mut self.cores {
            if let Some(req) = core.tick(budget) {
                self.core_requests.push_back(req);
            }
        }

        // 1. Plan: expand accesses while the transaction window has room
        //    (keeps transaction i+1 visible for PB). The lowered-transaction
        //    buffer and each transaction's request buffer are recycled, so
        //    planning in the steady state allocates nothing.
        let mut planned_buf = std::mem::take(&mut self.planned_scratch);
        while self.tracker.inflight() < self.cfg.max_inflight_txns {
            let Some(req) = self.core_requests.pop_front() else {
                break;
            };
            self.planner
                .plan_into(&req, &mut self.conformance, &mut planned_buf);
            for planned in planned_buf.drain(..) {
                let (spent, wake) = self.tracker.admit(planned, cycle);
                self.planner.recycle_requests(spent);
                if let Some(wake) = wake {
                    self.apply_wake(wake);
                }
            }
            self.conformance.collect();
        }
        self.planned_scratch = planned_buf;

        // 2. Enqueue: feed the backend in strict transaction order.
        self.tracker.enqueue_ready(self.backend.as_mut(), cycle);

        // 3. Schedule: the memory backend advances one cycle.
        self.backend.tick(cycle);

        // 3b. Conformance: re-validate what just issued against the
        // stream checkers (JEDEC shadow rules and/or transaction order).
        if self.conformance.stream_enabled() {
            for ev in self.backend.take_command_events() {
                self.conformance.observe_command(&ev);
            }
            self.conformance.collect();
        }

        // 4. Retire completed requests (scratch buffer: draining must not
        // allocate on this per-cycle path).
        let mut done_buf = std::mem::take(&mut self.retired_scratch);
        done_buf.clear();
        self.backend.drain_completed_into(&mut done_buf);
        for done in &done_buf {
            if let Some(retired) = self.tracker.retire(done, cycle) {
                self.metrics.record_class(retired.kind, done.class);
                if let Some(wake) = retired.wake {
                    self.apply_wake(wake);
                }
            }
        }
        self.retired_scratch = done_buf;

        // 5. Attribute this cycle to the oldest unfinished transaction.
        self.metrics.attribute(self.tracker.oldest_kind());

        self.cycle += 1;
    }

    /// Applies one core release computed by the tracker.
    fn apply_wake(&mut self, wake: Wake) {
        self.core_unblock_at[wake.core].push(wake.at);
        if let Some(latency) = wake.latency {
            self.metrics.read_latencies.push(latency);
        }
    }

    /// Conformance violations found so far (empty when checking is off —
    /// or when the simulated machine is behaving).
    #[must_use]
    pub fn violations(&self) -> &[sim_verify::Violation] {
        self.conformance.violations()
    }

    /// The scheduling-policy auditor riding on this run's command stream
    /// (`None` when stream checking is off). Its canonical digest is the
    /// policy-equivalence oracle: two runs with equal digests and zero
    /// violations issued the same transaction-ordered data-command
    /// sequence.
    #[must_use]
    pub fn policy_auditor(&self) -> Option<&sim_verify::PolicyAuditor> {
        self.conformance.policy_auditor()
    }

    /// Raw program read-path latency samples recorded so far, in cycles —
    /// the sharded engine pools these across shards before recomputing
    /// merged percentiles (percentiles of percentiles would be wrong).
    pub(crate) fn read_latency_samples(&self) -> &[u64] {
        &self.metrics.read_latencies
    }

    /// Freezes every counter in the system into one snapshot (also the
    /// sharded engine's per-shard merge input).
    pub(crate) fn capture(&self) -> CounterSnapshot {
        CounterSnapshot {
            cycle: self.cycle,
            instructions: self.cores.iter().map(Core::instructions_retired).sum(),
            oram_accesses: self.planner.accesses(),
            cycles_by_kind: self.metrics.cycles_by_kind,
            transactions_by_kind: self.tracker.transactions_by_kind().clone(),
            row_class_by_kind: self.metrics.row_class_map(),
            retry_cycles: self.metrics.retry_cycles,
            read_latency_idx: self.metrics.read_latencies.len(),
            backend: self.backend.snapshot(),
            protocol: self.planner.protocol().stats().clone(),
        }
    }

    /// Starts the measurement window: everything simulated so far becomes
    /// warm-up and is excluded from [`Self::report`]'s counters and rates.
    /// May be called at most once, typically after stepping through a
    /// warm-up prefix of the trace.
    ///
    /// # Panics
    ///
    /// Panics if a measurement window was already begun.
    pub fn begin_measurement(&mut self) {
        assert!(
            self.measurement_start.is_none(),
            "measurement window already begun"
        );
        self.measurement_start = Some(self.capture());
    }

    /// Builds the final report (also callable mid-run for progress). When a
    /// measurement window is active, every counter and rate covers only the
    /// window (see [`Self::begin_measurement`]).
    #[must_use]
    pub fn report(&self) -> SimReport {
        let now = self.capture();
        let (window, latency_start) = match &self.measurement_start {
            Some(start) => (now.delta(start), start.read_latency_idx),
            None => (now, 0),
        };
        let latencies = &self.metrics.read_latencies[latency_start..];
        let violations = self
            .conformance
            .violations()
            .iter()
            .map(ToString::to_string)
            .collect();
        build_report(
            &self.cfg,
            self.label.clone(),
            &window,
            latencies,
            violations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use ring_oram::OpKind;
    use trace_synth::by_name;
    use trace_synth::TraceGenerator;

    fn traces(cfg: &SystemConfig, n: usize, workload: &str) -> Vec<Vec<TraceRecord>> {
        (0..cfg.cores)
            .map(|c| TraceGenerator::new(by_name(workload).unwrap(), 11, c as u32).take_records(n))
            .collect()
    }

    fn run(scheme: Scheme, n: usize) -> SimReport {
        let cfg = SystemConfig::test_small(scheme);
        let t = traces(&cfg, n, "black");
        let mut sim = Simulation::new(cfg, t);
        sim.run(50_000_000).expect("run completes")
    }

    #[test]
    fn baseline_completes_and_accounts_every_cycle() {
        let r = run(Scheme::Baseline, 60);
        assert_eq!(r.oram_accesses, 120); // 2 cores x 60 records
        assert_eq!(r.cycles_by_kind.total(), r.total_cycles);
        assert!(r.total_cycles > 0);
        assert!(r.requests_completed > 0);
        assert!(r.instructions > 0);
    }

    #[test]
    fn read_paths_conflict_more_than_evictions() {
        // The paper's Fig. 5(b): selective reads defeat the subtree layout,
        // full-path evictions exploit it.
        let r = run(Scheme::Baseline, 150);
        let read = r.row_class(OpKind::ReadPath);
        let evict = r.row_class(OpKind::Eviction);
        assert!(read.total() > 0 && evict.total() > 0);
        assert!(
            read.conflict_rate() > evict.conflict_rate(),
            "read {:.2} vs evict {:.2}",
            read.conflict_rate(),
            evict.conflict_rate()
        );
    }

    #[test]
    fn pb_is_faster_than_baseline() {
        let base = run(Scheme::Baseline, 150);
        let pb = run(Scheme::Pb, 150);
        assert!(
            pb.total_cycles < base.total_cycles,
            "PB {} vs baseline {}",
            pb.total_cycles,
            base.total_cycles
        );
        assert!(pb.early_precharge_fraction > 0.0);
        assert!(pb.early_activate_fraction > 0.0);
        assert_eq!(base.early_precharge_fraction, 0.0);
    }

    #[test]
    fn cb_is_faster_than_baseline() {
        let base = run(Scheme::Baseline, 150);
        let cb = run(Scheme::Cb, 150);
        assert!(
            cb.total_cycles < base.total_cycles,
            "CB {} vs baseline {}",
            cb.total_cycles,
            base.total_cycles
        );
        assert!(cb.protocol.greens_fetched > 0);
    }

    #[test]
    fn all_is_fastest() {
        let base = run(Scheme::Baseline, 150);
        let cb = run(Scheme::Cb, 150);
        let pb = run(Scheme::Pb, 150);
        let all = run(Scheme::All, 150);
        assert!(all.total_cycles < base.total_cycles);
        assert!(all.total_cycles <= cb.total_cycles);
        assert!(all.total_cycles <= pb.total_cycles);
    }

    #[test]
    fn pb_reduces_bank_idle_time() {
        let base = run(Scheme::Baseline, 150);
        let pb = run(Scheme::Pb, 150);
        assert!(
            pb.bank_idle_proportion < base.bank_idle_proportion,
            "PB idle {:.3} vs baseline {:.3}",
            pb.bank_idle_proportion,
            base.bank_idle_proportion
        );
    }

    #[test]
    fn pb_preserves_row_class_counts() {
        // The security argument: PB changes *when* PRE/ACT go out, never
        // how many requests conflict.
        let base = run(Scheme::Baseline, 100);
        let pb = run(Scheme::Pb, 100);
        for kind in ["read", "evict"] {
            let b = base
                .row_class_by_kind
                .get(kind)
                .copied()
                .unwrap_or_default();
            let p = pb.row_class_by_kind.get(kind).copied().unwrap_or_default();
            assert_eq!(b.total(), p.total(), "{kind}: request counts differ");
        }
    }

    #[test]
    fn deterministic_runs() {
        let a = run(Scheme::All, 60);
        let b = run(Scheme::All, 60);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.requests_completed, b.requests_completed);
    }

    #[test]
    fn eviction_fires_at_the_paper_rate() {
        let r = run(Scheme::Baseline, 160);
        let evicts = *r.transactions_by_kind.get("evict").unwrap_or(&0);
        let reads = *r.transactions_by_kind.get("read").unwrap_or(&0);
        // One eviction per A = 8 read paths (within one in-flight access).
        let expected = reads / 8;
        assert!(
            (evicts as i64 - expected as i64).unsigned_abs() <= 1,
            "evictions {evicts} vs expected {expected}"
        );
    }

    #[test]
    fn recursion_generates_extra_transactions_and_slows_down() {
        let flat = run(Scheme::Baseline, 60);
        let mut cfg = SystemConfig::test_small(Scheme::Baseline);
        cfg.recursion = Some(crate::config::RecursionSettings {
            tracked_blocks: 1 << 12,
            positions_per_block: 8,
            max_onchip_entries: 1 << 6,
        });
        let t = traces(&cfg, 60, "black");
        let mut sim = Simulation::new(cfg, t);
        let rec = sim.run(100_000_000).expect("completes");
        sim.oram().check_invariants();
        assert_eq!(rec.oram_accesses, flat.oram_accesses);
        assert!(
            rec.transactions_by_kind["read"] > flat.transactions_by_kind["read"],
            "map ORAM read paths must appear"
        );
        assert!(
            rec.total_cycles > flat.total_cycles,
            "recursion costs time: {} vs {}",
            rec.total_cycles,
            flat.total_cycles
        );
    }

    #[test]
    fn measurement_window_excludes_warmup() {
        let cfg = SystemConfig::test_small(Scheme::All);
        let t = traces(&cfg, 120, "black");
        let mut sim = Simulation::new(cfg, t);
        // Warm up through half the accesses, then measure the rest.
        while sim.oram_accesses() < 120 && !sim.is_finished() {
            sim.step();
        }
        // A step may plan more than one access; capture the actual count.
        let warmed = sim.oram_accesses();
        sim.begin_measurement();
        let at_start = sim.report();
        assert_eq!(at_start.oram_accesses, 0, "window starts empty");
        assert_eq!(at_start.total_cycles, 0);
        assert_eq!(at_start.requests_completed, 0);
        while !sim.is_finished() {
            sim.step();
        }
        let r = sim.report();
        assert_eq!(r.oram_accesses, 240 - warmed, "rest measured");
        assert!(r.total_cycles > 0);
        assert_eq!(r.cycles_by_kind.total(), r.total_cycles);
        let classified: u64 = r.row_class_by_kind.values().map(|c| c.total()).sum();
        assert_eq!(classified, r.requests_completed);
        assert!(r.instructions > 0);
        assert!(r.energy.total_uj() > 0.0);
        assert!(r.bank_idle_proportion > 0.0 && r.bank_idle_proportion < 1.0);
    }

    #[test]
    #[should_panic(expected = "already begun")]
    fn measurement_window_is_single_use() {
        let cfg = SystemConfig::test_small(Scheme::Baseline);
        let t = traces(&cfg, 10, "black");
        let mut sim = Simulation::new(cfg, t);
        sim.begin_measurement();
        sim.begin_measurement();
    }

    #[test]
    fn cycle_limit_carries_partial_progress() {
        let cfg = SystemConfig::test_small(Scheme::Baseline);
        let t = traces(&cfg, 200, "black");
        let mut sim = Simulation::new(cfg, t);
        let err = sim.run(10).unwrap_err();
        assert_eq!(err.limit, 10);
        assert_eq!(err.cycle, 10);
        assert_eq!(
            err.partial.total_cycles, 10,
            "partial report covers the prefix"
        );
        assert!(err.to_string().contains("exceeded 10 cycles"));
        // The run is resumable: the limit check is non-destructive.
        let r = sim.run(50_000_000).expect("finishes with a larger budget");
        assert_eq!(r.oram_accesses, 400);
    }

    #[test]
    fn functional_backend_runs_and_is_checked() {
        let mut cfg = SystemConfig::test_small(Scheme::All);
        cfg.backend = crate::config::BackendKind::FastFunctional;
        let t = traces(&cfg, 60, "black");
        let mut sim = Simulation::new(cfg, t);
        let r = sim.run(50_000_000).expect("completes");
        assert_eq!(r.oram_accesses, 120);
        assert_eq!(r.cycles_by_kind.total(), r.total_cycles);
        assert!(r.requests_completed > 0);
        // The txn-order oracle ran (test_small enables verify) and found
        // nothing; DRAM-level metrics are zero by contract.
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.energy.total_uj(), 0.0);
        assert_eq!(r.bank_idle_proportion, 0.0);
    }
}
