//! Seeded arrival processes: bursty/diurnal request-rate models.
//!
//! The trace generators in this crate model *what* a core accesses; this
//! module models *when* requests arrive at a serving front-end. The
//! process composes two classic traffic shapes:
//!
//! * **on/off Markov bursts** — each tick the process flips between a
//!   quiet and a bursting state with configured per-tick probabilities;
//!   while bursting, the rate is multiplied by `burst_multiplier`
//!   (interrupted-Poisson-style traffic);
//! * **sinusoidal base rate** — the base rate is modulated by a slow
//!   sine wave (`diurnal_period` ticks per cycle, `diurnal_amplitude`
//!   relative swing), the standard stand-in for day/night load curves.
//!
//! Everything is deterministic for a `(spec, seed)` pair. The sine is a
//! Bhaskara I rational approximation evaluated with only `+ − × ÷` —
//! IEEE-exact operations — so results are bit-identical across platforms,
//! unlike `f64::sin`, whose last-bit behavior is libm-dependent.

use oram_rng::{Rng, StdRng};

use crate::record::TraceRecord;

/// Shape of an arrival process, in requests per kilo-tick.
///
/// "Tick" is whatever unit the consumer advances the process by — the
/// service layer uses one memory-bus cycle per tick; a plain trace
/// consumer can treat ticks as instruction slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalSpec {
    /// Long-run base arrival rate, in requests per 1000 ticks, before
    /// burst and diurnal modulation.
    pub base_per_ktick: f64,
    /// Rate multiplier while the on/off process is in the *on* (bursting)
    /// state. `1.0` disables bursts.
    pub burst_multiplier: f64,
    /// Per-tick probability of entering the bursting state from quiet.
    pub burst_on: f64,
    /// Per-tick probability of leaving the bursting state back to quiet.
    pub burst_off: f64,
    /// Period of the sinusoidal base-rate modulation, in ticks. `0`
    /// disables the diurnal component.
    pub diurnal_period: u64,
    /// Relative amplitude of the diurnal swing in `[0, 1)`: the base rate
    /// oscillates in `base · (1 ± amplitude)`.
    pub diurnal_amplitude: f64,
}

impl ArrivalSpec {
    /// A steady trickle: no bursts, no diurnal swing.
    #[must_use]
    pub fn steady(base_per_ktick: f64) -> Self {
        Self {
            base_per_ktick,
            burst_multiplier: 1.0,
            burst_on: 0.0,
            burst_off: 1.0,
            diurnal_period: 0,
            diurnal_amplitude: 0.0,
        }
    }

    /// A bursty profile: quiet background load with `multiplier`× on/off
    /// bursts averaging ~200 ticks on, ~2000 ticks off.
    #[must_use]
    pub fn bursty(base_per_ktick: f64, multiplier: f64) -> Self {
        Self {
            base_per_ktick,
            burst_multiplier: multiplier,
            burst_on: 1.0 / 2000.0,
            burst_off: 1.0 / 200.0,
            diurnal_period: 0,
            diurnal_amplitude: 0.0,
        }
    }

    /// A diurnal profile: sinusoidal base rate with the given period and
    /// relative amplitude, no bursts.
    #[must_use]
    pub fn diurnal(base_per_ktick: f64, period: u64, amplitude: f64) -> Self {
        Self {
            base_per_ktick,
            burst_multiplier: 1.0,
            burst_on: 0.0,
            burst_off: 1.0,
            diurnal_period: period,
            diurnal_amplitude: amplitude,
        }
    }

    /// Validates the spec's numeric ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: rates and
    /// multipliers must be finite and non-negative, probabilities in
    /// `[0, 1]`, amplitude in `[0, 1)`, and a nonzero amplitude needs a
    /// nonzero period.
    pub fn validate(&self) -> Result<(), String> {
        let finite_nonneg = |v: f64, name: &str| -> Result<(), String> {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and >= 0, got {v}"));
            }
            Ok(())
        };
        finite_nonneg(self.base_per_ktick, "base_per_ktick")?;
        finite_nonneg(self.burst_multiplier, "burst_multiplier")?;
        for (v, name) in [(self.burst_on, "burst_on"), (self.burst_off, "burst_off")] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be a probability in [0, 1], got {v}"));
            }
        }
        if !self.diurnal_amplitude.is_finite() || !(0.0..1.0).contains(&self.diurnal_amplitude) {
            return Err(format!(
                "diurnal_amplitude must be in [0, 1), got {}",
                self.diurnal_amplitude
            ));
        }
        if self.diurnal_amplitude > 0.0 && self.diurnal_period == 0 {
            return Err("diurnal_amplitude > 0 requires diurnal_period > 0".to_string());
        }
        Ok(())
    }
}

/// Deterministic sine of `turns` full cycles (i.e. `sin(2π·turns)`), via
/// the Bhaskara I approximation `sin(πx) ≈ 16x(1−x) / (5 − 4x(1−x))` for
/// `x ∈ [0, 1]`, mirrored for the negative half-cycle. Max absolute error
/// ~0.0016 — far below any traffic-modeling need — and built from
/// IEEE-exact operations only, so it is bit-identical everywhere.
#[must_use]
fn det_sin_turns(turns: f64) -> f64 {
    let frac = turns - turns.floor(); // [0, 1): position within the cycle
    let (x, sign) = if frac < 0.5 {
        (frac * 2.0, 1.0)
    } else {
        ((frac - 0.5) * 2.0, -1.0)
    };
    let t = x * (1.0 - x);
    sign * (16.0 * t) / (5.0 - 4.0 * t)
}

/// A seeded arrival process: call [`ArrivalProcess::next_tick`] once per
/// tick to get that tick's arrival count.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    spec: ArrivalSpec,
    rng: StdRng,
    bursting: bool,
    tick: u64,
}

impl ArrivalProcess {
    /// Creates the process. The spec is validated; see
    /// [`ArrivalSpec::validate`].
    ///
    /// # Panics
    ///
    /// Panics when the spec is invalid — arrival shapes are configuration,
    /// fixed before a run starts.
    #[must_use]
    pub fn new(spec: ArrivalSpec, seed: u64) -> Self {
        if let Err(e) = spec.validate() {
            panic!("invalid ArrivalSpec: {e}");
        }
        Self {
            spec,
            rng: StdRng::seed_from_u64(seed),
            bursting: false,
            tick: 0,
        }
    }

    /// The process's current mean rate (requests per tick) at tick `t`,
    /// for the given burst state — the deterministic envelope the random
    /// draws are taken from. Exposed for tests and capacity planning.
    #[must_use]
    pub fn rate_at(&self, t: u64, bursting: bool) -> f64 {
        let mut rate = self.spec.base_per_ktick / 1000.0;
        if self.spec.diurnal_period > 0 {
            let turns = t as f64 / self.spec.diurnal_period as f64;
            rate *= 1.0 + self.spec.diurnal_amplitude * det_sin_turns(turns);
        }
        if bursting {
            rate *= self.spec.burst_multiplier;
        }
        rate
    }

    /// Advances one tick and returns how many requests arrive on it.
    ///
    /// The burst state transitions first (Markov on/off), then the count
    /// is drawn as `floor(rate)` plus a Bernoulli trial on the fractional
    /// part — mean exactly `rate`, deterministic for a seed.
    pub fn next_tick(&mut self) -> u32 {
        self.bursting = if self.bursting {
            !self.rng.gen_bool(self.spec.burst_off)
        } else {
            self.rng.gen_bool(self.spec.burst_on)
        };
        let rate = self.rate_at(self.tick, self.bursting);
        self.tick += 1;
        let whole = rate.floor();
        let frac = rate - whole;
        let mut n = whole as u32;
        if frac > 0.0 && self.rng.gen_bool(frac) {
            n += 1;
        }
        n
    }

    /// Whether the process is currently in its bursting state.
    #[must_use]
    pub fn is_bursting(&self) -> bool {
        self.bursting
    }

    /// Ticks consumed so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Drains the process into inter-arrival gaps: the number of empty
    /// ticks before each of the next `n` arrivals. A tick carrying `k > 1`
    /// arrivals contributes `k − 1` zero gaps.
    pub fn take_gaps(&mut self, n: usize) -> Vec<u32> {
        let mut gaps = Vec::with_capacity(n);
        let mut idle = 0u32;
        while gaps.len() < n {
            let arrivals = self.next_tick();
            for _ in 0..arrivals {
                if gaps.len() == n {
                    break;
                }
                gaps.push(idle);
                idle = 0;
            }
            if arrivals == 0 {
                idle = idle.saturating_add(1);
            }
        }
        gaps
    }

    /// Renders the process as a plain trace: `n` records whose
    /// `gap_instructions` follow the arrival gaps (treating ticks as
    /// instruction slots), with uniformly random blocks in `[0, blocks)`
    /// and the given write fraction. This makes the bursty/diurnal shapes
    /// usable by the ordinary trace-driven simulation, not just the
    /// service layer.
    pub fn take_records(&mut self, n: usize, blocks: u64, write_fraction: f64) -> Vec<TraceRecord> {
        let gaps = self.take_gaps(n);
        gaps.into_iter()
            .map(|gap| {
                let block = self.rng.gen_range(0..blocks);
                let is_write = self.rng.gen_bool(write_fraction);
                TraceRecord::new(gap, block, is_write)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_arrivals() {
        let spec = ArrivalSpec::bursty(40.0, 8.0);
        let mut a = ArrivalProcess::new(spec, 7);
        let mut b = ArrivalProcess::new(spec, 7);
        let xs: Vec<u32> = (0..5000).map(|_| a.next_tick()).collect();
        let ys: Vec<u32> = (0..5000).map(|_| b.next_tick()).collect();
        assert_eq!(xs, ys);
        let mut c = ArrivalProcess::new(spec, 8);
        let zs: Vec<u32> = (0..5000).map(|_| c.next_tick()).collect();
        assert_ne!(xs, zs, "different seeds must differ");
    }

    #[test]
    fn bursts_raise_the_realized_rate() {
        // Force permanently-on vs permanently-off burst states and compare.
        let quiet = ArrivalSpec::steady(20.0);
        let mut loud = ArrivalSpec::steady(20.0);
        loud.burst_multiplier = 10.0;
        loud.burst_on = 1.0;
        loud.burst_off = 0.0;
        let mut q = ArrivalProcess::new(quiet, 11);
        let mut l = ArrivalProcess::new(loud, 11);
        let sum_q: u64 = (0..20_000).map(|_| u64::from(q.next_tick())).sum();
        let sum_l: u64 = (0..20_000).map(|_| u64::from(l.next_tick())).sum();
        assert!(l.is_bursting());
        assert!(
            sum_l > sum_q * 5,
            "bursting sum {sum_l} should dwarf quiet sum {sum_q}"
        );
    }

    #[test]
    fn diurnal_modulation_swings_the_envelope() {
        let spec = ArrivalSpec::diurnal(100.0, 1000, 0.5);
        let p = ArrivalProcess::new(spec, 0);
        let base = 100.0 / 1000.0;
        // Peak at a quarter period, trough at three quarters.
        let peak = p.rate_at(250, false);
        let trough = p.rate_at(750, false);
        assert!((peak - base * 1.5).abs() < base * 0.01, "peak {peak}");
        assert!((trough - base * 0.5).abs() < base * 0.01, "trough {trough}");
        // Zero crossings at 0 and half period.
        assert!((p.rate_at(0, false) - base).abs() < base * 0.001);
        assert!((p.rate_at(500, false) - base).abs() < base * 0.001);
    }

    #[test]
    fn det_sin_matches_libm_closely() {
        for i in 0..=1000 {
            let turns = i as f64 / 1000.0;
            let approx = det_sin_turns(turns);
            let exact = (2.0 * std::f64::consts::PI * turns).sin();
            assert!(
                (approx - exact).abs() < 2e-3,
                "turns {turns}: {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn gaps_and_records_are_well_formed() {
        let spec = ArrivalSpec::bursty(50.0, 4.0);
        let mut p = ArrivalProcess::new(spec, 3);
        let gaps = p.take_gaps(500);
        assert_eq!(gaps.len(), 500);

        let mut p2 = ArrivalProcess::new(spec, 3);
        let records = p2.take_records(500, 1 << 12, 0.25);
        assert_eq!(records.len(), 500);
        assert!(records.iter().all(|r| r.op.block < (1 << 12)));
        let writes = records.iter().filter(|r| r.op.is_write).count();
        assert!(writes > 0 && writes < 500);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut s = ArrivalSpec::steady(10.0);
        s.burst_on = 1.5;
        assert!(s.validate().is_err());
        let mut s = ArrivalSpec::steady(10.0);
        s.diurnal_amplitude = 0.3; // period still 0
        assert!(s.validate().is_err());
        let mut s = ArrivalSpec::steady(-1.0);
        assert!(s.validate().is_err());
        s.base_per_ktick = 10.0;
        assert!(s.validate().is_ok());
    }
}
