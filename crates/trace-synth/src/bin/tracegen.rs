//! `tracegen` — emit synthetic workloads as USIMM-format trace files.
//!
//! ```text
//! tracegen --workload libq --records 100000 --seed 7 --core 0 -o libq.usimm
//! tracegen --list
//! ```
//!
//! The emitted files are interchangeable with MSC-2012 traces: feed them to
//! `stringoram --trace <file>` or any USIMM-compatible tool.

use std::io::Write;
use std::process::ExitCode;

use trace_synth::{all_workloads, by_name, summarize, usimm, TraceGenerator};

struct Options {
    workload: String,
    records: usize,
    seed: u64,
    core: u32,
    output: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            workload: "black".into(),
            records: 10_000,
            seed: 42,
            core: 0,
            output: None,
        }
    }
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--workload" | "-w" => opts.workload = value("--workload")?,
            "--records" | "-n" => {
                opts.records = value("--records")?
                    .parse()
                    .map_err(|e| format!("bad --records: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--core" => {
                opts.core = value("--core")?
                    .parse()
                    .map_err(|e| format!("bad --core: {e}"))?;
            }
            "--output" | "-o" => opts.output = Some(value("--output")?),
            "--list" => {
                for w in all_workloads() {
                    println!("{:<8} {:<9} MPKI {:.2}", w.name, w.suite, w.mpki);
                }
                return Ok(None);
            }
            "--help" | "-h" => {
                println!(
                    "usage: tracegen [--workload NAME] [--records N] [--seed N]\n\
                     \x20               [--core N] [--output FILE] [--list]"
                );
                return Ok(None);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(spec) = by_name(&opts.workload) else {
        eprintln!("error: unknown workload {:?} (try --list)", opts.workload);
        return ExitCode::FAILURE;
    };
    let mut generator = TraceGenerator::new(spec, opts.seed, opts.core);
    let records = generator.take_records(opts.records);
    let summary = summarize(&records);

    let result = match &opts.output {
        Some(path) => std::fs::File::create(path)
            .map_err(|e| format!("cannot create {path}: {e}"))
            .and_then(|f| {
                let mut w = std::io::BufWriter::new(f);
                usimm::emit(&records, &mut w)
                    .and_then(|()| w.flush())
                    .map_err(|e| format!("write failed: {e}"))
            }),
        None => {
            let stdout = std::io::stdout();
            let mut w = std::io::BufWriter::new(stdout.lock());
            usimm::emit(&records, &mut w)
                .and_then(|()| w.flush())
                .map_err(|e| format!("write failed: {e}"))
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let target_mpki = by_name(&opts.workload).map_or(0.0, |w| w.mpki);
    eprintln!(
        "emitted {} records: MPKI {:.2} (target {target_mpki:.2}), write fraction {:.2}, {} unique blocks",
        summary.ops, summary.mpki, summary.write_fraction, summary.unique_blocks
    );
    ExitCode::SUCCESS
}
