//! Deterministic synthetic trace generation.

use oram_rng::{Rng, StdRng};

use crate::record::TraceRecord;
use crate::workloads::WorkloadSpec;
use crate::zipf::Zipf;

/// Shape of a workload's block-address stream.
#[derive(Debug, Clone, PartialEq)]
pub enum LocalityModel {
    /// `streams` independent sequential walkers (streaming kernels).
    Streaming {
        /// Number of concurrent sequential streams.
        streams: u32,
    },
    /// Zipf(θ) reuse over a fixed working set (pointer-chasing / lookup
    /// codes with a hot core).
    WorkingSet {
        /// Working-set size in blocks.
        blocks: u64,
        /// Zipf exponent (0 = uniform).
        theta: f64,
    },
    /// Uniform random over a large footprint (irregular codes like `libq`
    /// and `mummer`).
    UniformRandom {
        /// Footprint in blocks.
        blocks: u64,
    },
    /// A probabilistic mix of streaming and working-set reuse.
    Mixed {
        /// Working-set size in blocks.
        blocks: u64,
        /// Zipf exponent for the working-set part.
        theta: f64,
        /// Probability that an access comes from a stream.
        stream_fraction: f64,
        /// Number of concurrent sequential streams.
        streams: u32,
    },
}

/// A deterministic generator of [`TraceRecord`]s for one core.
///
/// Gaps between memory operations are geometric with mean `1000 / MPKI`,
/// so the generated trace's MPKI converges to the spec's (verified by
/// tests within 5 %). Block addresses follow the spec's locality model,
/// offset by `core_id` so different cores touch disjoint footprints (as the
/// MSC multi-programmed traces do).
#[derive(Debug)]
pub struct TraceGenerator {
    spec: WorkloadSpec,
    rng: StdRng,
    /// Per-stream cursors for the streaming models.
    cursors: Vec<u64>,
    zipf: Option<Zipf>,
    /// Base offset separating cores' footprints.
    base: u64,
    /// Probability that any instruction is a memory op (geometric gap).
    miss_prob: f64,
}

impl TraceGenerator {
    /// Footprint separation between cores, in blocks (64 MiB of 64 B
    /// blocks), comfortably larger than any workload footprint.
    pub const CORE_STRIDE: u64 = 1 << 20;

    /// Creates a generator for `spec` seeded by `(seed, core_id)`.
    ///
    /// # Panics
    ///
    /// Panics if the spec's MPKI is not in `(0, 1000]`.
    #[must_use]
    pub fn new(spec: WorkloadSpec, seed: u64, core_id: u32) -> Self {
        assert!(
            spec.mpki > 0.0 && spec.mpki <= 1000.0,
            "mpki must be in (0, 1000]"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(core_id) << 32));
        let base = u64::from(core_id) * Self::CORE_STRIDE;
        let (cursors, zipf) = match &spec.locality {
            LocalityModel::Streaming { streams } => {
                let cursors = (0..*streams)
                    .map(|s| u64::from(s) * (Self::CORE_STRIDE / u64::from(*streams)))
                    .collect();
                (cursors, None)
            }
            LocalityModel::WorkingSet { blocks, theta } => {
                (Vec::new(), Some(Zipf::new(*blocks, *theta)))
            }
            LocalityModel::UniformRandom { .. } => (Vec::new(), None),
            LocalityModel::Mixed {
                blocks,
                theta,
                streams,
                ..
            } => {
                let cursors = (0..*streams)
                    .map(|s| u64::from(s) * (Self::CORE_STRIDE / u64::from(*streams)))
                    .collect();
                (cursors, Some(Zipf::new(*blocks, *theta)))
            }
        };
        let miss_prob = spec.mpki / 1000.0;
        let _ = rng.gen::<u64>(); // decorrelate seed mixing
        Self {
            spec,
            rng,
            cursors,
            zipf,
            base,
            miss_prob,
        }
    }

    /// The specification driving this generator.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    fn next_block(&mut self) -> u64 {
        let block = match &self.spec.locality {
            LocalityModel::Streaming { streams } => {
                let s = self.rng.gen_range(0..*streams) as usize;
                let b = self.cursors[s];
                self.cursors[s] = (self.cursors[s] + 1) % Self::CORE_STRIDE;
                b
            }
            LocalityModel::WorkingSet { .. } => {
                let z = self.zipf.as_ref().expect("working set has zipf");
                z.sample(&mut self.rng)
            }
            LocalityModel::UniformRandom { blocks } => self.rng.gen_range(0..*blocks),
            LocalityModel::Mixed {
                stream_fraction,
                streams,
                ..
            } => {
                if self.rng.gen_bool(*stream_fraction) {
                    let s = self.rng.gen_range(0..*streams) as usize;
                    let b = self.cursors[s];
                    self.cursors[s] = (self.cursors[s] + 1) % Self::CORE_STRIDE;
                    b
                } else {
                    let z = self.zipf.as_ref().expect("mixed has zipf");
                    z.sample(&mut self.rng)
                }
            }
        };
        self.base + block
    }

    /// Generates the next record: a geometric instruction gap followed by
    /// one memory operation.
    pub fn next_record(&mut self) -> TraceRecord {
        // Geometric(p) gap: number of non-memory instructions before the
        // next miss. Inverse-CDF sampling keeps it O(1).
        let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let gap = (u.ln() / (1.0 - self.miss_prob).ln()).floor() as u32;
        let block = self.next_block();
        let is_write = self.rng.gen_bool(self.spec.write_fraction);
        TraceRecord::new(gap, block, is_write)
    }

    /// Generates `n` records.
    pub fn take_records(&mut self, n: usize) -> Vec<TraceRecord> {
        (0..n).map(|_| self.next_record()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::summarize;
    use crate::workloads::{all_workloads, by_name};

    #[test]
    fn mpki_converges_to_spec() {
        for spec in all_workloads() {
            let target = spec.mpki;
            let name = spec.name;
            let mut g = TraceGenerator::new(spec, 7, 0);
            let records = g.take_records(20_000);
            let s = summarize(&records);
            let rel = (s.mpki - target).abs() / target;
            assert!(rel < 0.05, "{name}: mpki {} vs target {target}", s.mpki);
        }
    }

    #[test]
    fn write_fraction_converges() {
        let spec = by_name("stream").unwrap();
        let target = spec.write_fraction;
        let mut g = TraceGenerator::new(spec, 3, 0);
        let s = summarize(&g.take_records(20_000));
        assert!((s.write_fraction - target).abs() < 0.02);
    }

    #[test]
    fn deterministic_per_seed_and_core() {
        let spec = by_name("black").unwrap();
        let a = TraceGenerator::new(spec.clone(), 9, 0).take_records(100);
        let b = TraceGenerator::new(spec.clone(), 9, 0).take_records(100);
        assert_eq!(a, b);
        let c = TraceGenerator::new(spec, 10, 0).take_records(100);
        assert_ne!(a, c);
    }

    #[test]
    fn cores_have_disjoint_footprints() {
        let spec = by_name("freq").unwrap();
        let a = TraceGenerator::new(spec.clone(), 9, 0).take_records(1000);
        let b = TraceGenerator::new(spec, 9, 1).take_records(1000);
        let sa: std::collections::HashSet<u64> = a.iter().map(|r| r.op.block).collect();
        let sb: std::collections::HashSet<u64> = b.iter().map(|r| r.op.block).collect();
        assert!(sa.is_disjoint(&sb));
    }

    #[test]
    fn streaming_walks_sequentially() {
        let spec = WorkloadSpec {
            name: "seq",
            suite: "test",
            mpki: 10.0,
            write_fraction: 0.0,
            locality: LocalityModel::Streaming { streams: 1 },
        };
        let mut g = TraceGenerator::new(spec, 1, 0);
        let records = g.take_records(10);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.op.block, i as u64);
        }
    }

    #[test]
    fn working_set_reuses_blocks() {
        let spec = WorkloadSpec {
            name: "hot",
            suite: "test",
            mpki: 10.0,
            write_fraction: 0.0,
            locality: LocalityModel::WorkingSet {
                blocks: 64,
                theta: 0.9,
            },
        };
        let mut g = TraceGenerator::new(spec, 1, 0);
        let s = summarize(&g.take_records(5000));
        assert!(s.unique_blocks <= 64);
        assert!(s.unique_blocks > 32, "most of the set gets touched");
    }

    #[test]
    fn blocks_stay_below_cold_space() {
        // Program blocks must never collide with RingOram::COLD_BASE (2^40).
        for spec in all_workloads() {
            let mut g = TraceGenerator::new(spec, 5, 3);
            for r in g.take_records(2000) {
                assert!(r.op.block < (1 << 40));
            }
        }
    }
}
