//! # trace-synth — synthetic memory-trace workloads
//!
//! The String ORAM paper evaluates on MSC-2012 traces (Simpoints of PARSEC,
//! SPEC and BIOBENCH applications) which are not redistributable. This
//! crate substitutes **deterministic synthetic traces** matched to each
//! workload's published MPKI (the paper's Table IV), plus read/write mix
//! and a locality model per workload — the properties that survive ORAM
//! randomization. It also reads and writes the original USIMM trace format
//! ([`usimm`]) so real MSC traces can be dropped in where available.
//!
//! # Example
//!
//! ```
//! use trace_synth::workloads::by_name;
//! use trace_synth::generator::TraceGenerator;
//! use trace_synth::record::summarize;
//!
//! let spec = by_name("libq").expect("known workload");
//! let mut gen = TraceGenerator::new(spec, 42, 0);
//! let trace = gen.take_records(10_000);
//! let summary = summarize(&trace);
//! assert!((summary.mpki - 20.20).abs() / 20.20 < 0.1);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod arrivals;
pub mod generator;
pub mod record;
pub mod usimm;
pub mod workloads;
pub mod zipf;

pub use arrivals::{ArrivalProcess, ArrivalSpec};
pub use generator::{LocalityModel, TraceGenerator};
pub use record::{summarize, MemOp, TraceRecord, TraceSummary};
pub use workloads::{all_workloads, by_name, WorkloadSpec};
