//! Trace records: the unit of work a simulated core consumes.

/// One memory operation at cache-line granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemOp {
    /// Cache-line (block) address — already normalized to a block index,
    /// not a byte address.
    pub block: u64,
    /// `true` for a store (write-back to memory), `false` for a load.
    pub is_write: bool,
}

/// One trace record, USIMM style: the number of non-memory instructions the
/// core executes before the memory operation, then the operation itself.
///
/// Traces are post-LLC: every [`MemOp`] is an LLC miss that reaches main
/// memory (and therefore, in a protected system, the ORAM controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// Non-memory instructions preceding the operation.
    pub gap_instructions: u32,
    /// The memory operation.
    pub op: MemOp,
}

impl TraceRecord {
    /// Convenience constructor.
    #[must_use]
    pub fn new(gap_instructions: u32, block: u64, is_write: bool) -> Self {
        Self {
            gap_instructions,
            op: MemOp { block, is_write },
        }
    }

    /// Total instructions this record represents (the gap plus the memory
    /// instruction itself).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        u64::from(self.gap_instructions) + 1
    }
}

/// Aggregate properties of a trace, used to verify generated workloads hit
/// their targets (e.g. MPKI within tolerance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSummary {
    /// Number of memory operations.
    pub ops: u64,
    /// Total instructions (gaps + memory instructions).
    pub instructions: u64,
    /// Fraction of operations that are writes.
    pub write_fraction: f64,
    /// Misses (memory ops) per kilo-instruction.
    pub mpki: f64,
    /// Number of distinct blocks touched.
    pub unique_blocks: u64,
}

/// Computes a [`TraceSummary`] over records.
pub fn summarize<'a, I: IntoIterator<Item = &'a TraceRecord>>(records: I) -> TraceSummary {
    let mut ops = 0u64;
    let mut instructions = 0u64;
    let mut writes = 0u64;
    let mut blocks = std::collections::HashSet::new();
    for r in records {
        ops += 1;
        instructions += r.instructions();
        if r.op.is_write {
            writes += 1;
        }
        blocks.insert(r.op.block);
    }
    TraceSummary {
        ops,
        instructions,
        write_fraction: if ops == 0 {
            0.0
        } else {
            writes as f64 / ops as f64
        },
        mpki: if instructions == 0 {
            0.0
        } else {
            ops as f64 * 1000.0 / instructions as f64
        },
        unique_blocks: blocks.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_instruction_count() {
        let r = TraceRecord::new(99, 5, false);
        assert_eq!(r.instructions(), 100);
    }

    #[test]
    fn summary_over_simple_trace() {
        let records = vec![
            TraceRecord::new(99, 1, false),
            TraceRecord::new(99, 2, true),
            TraceRecord::new(99, 1, false),
        ];
        let s = summarize(&records);
        assert_eq!(s.ops, 3);
        assert_eq!(s.instructions, 300);
        assert!((s.write_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.mpki - 10.0).abs() < 1e-12);
        assert_eq!(s.unique_blocks, 2);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = summarize(&[]);
        assert_eq!(s.ops, 0);
        assert_eq!(s.mpki, 0.0);
        assert_eq!(s.write_fraction, 0.0);
    }
}
