//! USIMM trace format I/O.
//!
//! The MSC-2012 contest (and the paper's methodology) uses USIMM's simple
//! text format, one record per line:
//!
//! ```text
//! <gap> R <hex-address>
//! <gap> W <hex-address> <hex-pc>
//! ```
//!
//! where `<gap>` is the number of non-memory instructions preceding the
//! operation. Supporting the format means anyone holding the original MSC
//! traces can feed them to this reproduction unchanged.

use std::io::{BufRead, Write};

use crate::record::TraceRecord;

/// Cache-line size used to convert byte addresses to block indices.
pub const LINE_BYTES: u64 = 64;

/// A parse failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Parses a USIMM-format trace from `reader`.
///
/// Byte addresses are normalized to 64 B block indices. Blank lines are
/// skipped.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on the first malformed line; I/O errors are
/// reported as a parse error on the failing line.
pub fn parse<R: BufRead>(reader: R) -> Result<Vec<TraceRecord>, ParseTraceError> {
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let lineno = i + 1;
        let line = line.map_err(|e| ParseTraceError {
            line: lineno,
            message: format!("io error: {e}"),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let err = |message: String| ParseTraceError {
            line: lineno,
            message,
        };
        let gap: u32 = parts
            .next()
            .ok_or_else(|| err("missing gap".into()))?
            .parse()
            .map_err(|e| err(format!("bad gap: {e}")))?;
        let op = parts.next().ok_or_else(|| err("missing op".into()))?;
        let addr_str = parts.next().ok_or_else(|| err("missing address".into()))?;
        let addr = u64::from_str_radix(addr_str.trim_start_matches("0x"), 16)
            .map_err(|e| err(format!("bad address: {e}")))?;
        let is_write = match op {
            "R" | "r" => false,
            "W" | "w" => {
                // Writes carry a PC field in USIMM traces; tolerate both.
                let _ = parts.next();
                true
            }
            other => return Err(err(format!("unknown op {other:?}"))),
        };
        out.push(TraceRecord::new(gap, addr / LINE_BYTES, is_write));
    }
    Ok(out)
}

/// Writes records in USIMM format to `writer` (block indices are expanded
/// back to byte addresses; writes get a zero PC).
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn emit<W: Write>(records: &[TraceRecord], mut writer: W) -> std::io::Result<()> {
    for r in records {
        let addr = r.op.block * LINE_BYTES;
        if r.op.is_write {
            writeln!(writer, "{} W 0x{addr:x} 0x0", r.gap_instructions)?;
        } else {
            writeln!(writer, "{} R 0x{addr:x}", r.gap_instructions)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_reads_and_writes() {
        let text = "100 R 0x1000\n50 W 0x1040 0x400\n\n7 r 40\n";
        let records = parse(text.as_bytes()).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], TraceRecord::new(100, 0x1000 / 64, false));
        assert_eq!(records[1], TraceRecord::new(50, 0x1040 / 64, true));
        assert_eq!(records[2], TraceRecord::new(7, 1, false));
    }

    #[test]
    fn roundtrip() {
        let records = vec![
            TraceRecord::new(10, 5, false),
            TraceRecord::new(20, 9, true),
        ];
        let mut buf = Vec::new();
        emit(&records, &mut buf).unwrap();
        let parsed = parse(buf.as_slice()).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn malformed_lines_report_position() {
        let text = "100 R 0x1000\nnonsense\n";
        let err = parse(text.as_bytes()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn unknown_op_rejected() {
        let err = parse("5 X 0x40\n".as_bytes()).unwrap_err();
        assert!(err.message.contains("unknown op"));
    }

    #[test]
    fn bad_gap_rejected() {
        let err = parse("xyz R 0x40\n".as_bytes()).unwrap_err();
        assert!(err.message.contains("bad gap"));
    }
}
