//! The paper's ten workloads as synthetic specifications.
//!
//! The paper evaluates on MSC-2012 traces of PARSEC 3.0, SPEC and BIOBENCH
//! applications (Table IV), which are not redistributable. Each workload is
//! therefore modeled by the properties that survive ORAM randomization —
//! its **MPKI** (from Table IV), a read/write mix and a locality model —
//! and synthesized deterministically from a seed. The paper itself observes
//! that performance varies by less than 0.38 % across workloads once ORAM
//! obfuscation is applied, so matching MPKI is the load-bearing part.

use crate::generator::LocalityModel;

/// A named workload specification.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name as used in the paper's figures.
    pub name: &'static str,
    /// Suite the original application came from.
    pub suite: &'static str,
    /// Misses (LLC misses reaching memory) per kilo-instruction, Table IV.
    pub mpki: f64,
    /// Fraction of memory operations that are writes.
    pub write_fraction: f64,
    /// Address-stream shape.
    pub locality: LocalityModel,
}

/// All ten workloads of the paper's Table IV, with their published MPKIs.
///
/// Locality models and write fractions are synthetic but chosen to reflect
/// the applications' well-known behaviour (e.g. `stream` is a sequential
/// streaming kernel, `libq`/`mummer` have large irregular footprints).
#[must_use]
pub fn all_workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "black",
            suite: "PARSEC",
            mpki: 4.58,
            write_fraction: 0.25,
            locality: LocalityModel::WorkingSet {
                blocks: 1 << 15,
                theta: 0.8,
            },
        },
        WorkloadSpec {
            name: "face",
            suite: "PARSEC",
            mpki: 10.37,
            write_fraction: 0.30,
            locality: LocalityModel::Mixed {
                blocks: 1 << 16,
                theta: 0.7,
                stream_fraction: 0.3,
                streams: 4,
            },
        },
        WorkloadSpec {
            name: "ferret",
            suite: "PARSEC",
            mpki: 10.42,
            write_fraction: 0.30,
            locality: LocalityModel::WorkingSet {
                blocks: 1 << 17,
                theta: 0.6,
            },
        },
        WorkloadSpec {
            name: "fluid",
            suite: "PARSEC",
            mpki: 4.72,
            write_fraction: 0.35,
            locality: LocalityModel::Mixed {
                blocks: 1 << 16,
                theta: 0.6,
                stream_fraction: 0.4,
                streams: 8,
            },
        },
        WorkloadSpec {
            name: "freq",
            suite: "PARSEC",
            mpki: 4.42,
            write_fraction: 0.25,
            locality: LocalityModel::WorkingSet {
                blocks: 1 << 15,
                theta: 0.9,
            },
        },
        WorkloadSpec {
            name: "leslie",
            suite: "SPEC",
            mpki: 9.45,
            write_fraction: 0.35,
            locality: LocalityModel::Mixed {
                blocks: 1 << 17,
                theta: 0.5,
                stream_fraction: 0.5,
                streams: 8,
            },
        },
        WorkloadSpec {
            name: "libq",
            suite: "SPEC",
            mpki: 20.20,
            write_fraction: 0.25,
            locality: LocalityModel::UniformRandom { blocks: 1 << 18 },
        },
        WorkloadSpec {
            name: "mummer",
            suite: "BIOBENCH",
            mpki: 24.07,
            write_fraction: 0.20,
            locality: LocalityModel::UniformRandom { blocks: 1 << 18 },
        },
        WorkloadSpec {
            name: "stream",
            suite: "SPEC",
            mpki: 5.57,
            write_fraction: 0.45,
            locality: LocalityModel::Streaming { streams: 4 },
        },
        WorkloadSpec {
            name: "swapt",
            suite: "PARSEC",
            mpki: 5.16,
            write_fraction: 0.30,
            locality: LocalityModel::WorkingSet {
                blocks: 1 << 16,
                theta: 0.7,
            },
        },
    ]
}

/// Looks up a workload by name.
#[must_use]
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all_workloads().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_workloads_match_table_iv() {
        let all = all_workloads();
        assert_eq!(all.len(), 10);
        let mpki = |n: &str| by_name(n).unwrap().mpki;
        assert!((mpki("black") - 4.58).abs() < 1e-9);
        assert!((mpki("face") - 10.37).abs() < 1e-9);
        assert!((mpki("ferret") - 10.42).abs() < 1e-9);
        assert!((mpki("fluid") - 4.72).abs() < 1e-9);
        assert!((mpki("freq") - 4.42).abs() < 1e-9);
        assert!((mpki("leslie") - 9.45).abs() < 1e-9);
        assert!((mpki("libq") - 20.20).abs() < 1e-9);
        assert!((mpki("mummer") - 24.07).abs() < 1e-9);
        assert!((mpki("stream") - 5.57).abs() < 1e-9);
        assert!((mpki("swapt") - 5.16).abs() < 1e-9);
    }

    #[test]
    fn names_are_unique() {
        let all = all_workloads();
        let names: std::collections::HashSet<&str> = all.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("doom").is_none());
    }

    #[test]
    fn write_fractions_are_sane() {
        for w in all_workloads() {
            assert!(
                (0.0..=1.0).contains(&w.write_fraction),
                "{} write fraction",
                w.name
            );
            assert!(w.mpki > 0.0, "{} mpki", w.name);
        }
    }
}
