//! Zipf-distributed sampling over a finite block population.
//!
//! Hot-set reuse in real workloads is heavy-tailed; a Zipf(θ) rank
//! distribution over the working set is the standard synthetic stand-in.

use oram_rng::Rng;

/// A Zipf sampler over ranks `0..n` with exponent `theta`.
///
/// Sampling uses a precomputed CDF and binary search: O(n) memory,
/// O(log n) per sample, exact (no rejection).
///
/// # Examples
///
/// ```
/// use trace_synth::zipf::Zipf;
/// use oram_rng::StdRng;
///
/// let z = Zipf::new(1000, 0.99);
/// let mut rng = StdRng::seed_from_u64(7);
/// let rank = z.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `theta` (`theta = 0`
    /// degenerates to uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative or not finite.
    #[must_use]
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "population must be nonzero");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "theta must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn population(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Draws one rank in `0..n`; rank 0 is the hottest.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cdf > u.
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_rng::StdRng;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(100, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn hot_ranks_dominate() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = 0;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Top-10 of Zipf(1.0) over 1000 holds ~39% of the mass.
        let frac = head as f64 / n as f64;
        assert!(frac > 0.30 && frac < 0.50, "head fraction {frac}");
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((700..1300).contains(&c), "rank {i}: {c}");
        }
    }

    #[test]
    #[should_panic(expected = "population must be nonzero")]
    fn zero_population_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "theta must be finite")]
    fn negative_theta_rejected() {
        let _ = Zipf::new(10, -1.0);
    }
}
