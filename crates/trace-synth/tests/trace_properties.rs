//! Property-style tests for trace generation and the USIMM format, driven
//! by the in-repo deterministic PRNG so the suite runs identically offline.

use oram_rng::{Rng, StdRng};

use trace_synth::generator::LocalityModel;
use trace_synth::{summarize, usimm, TraceGenerator, TraceRecord, WorkloadSpec};

const CASES: u64 = 48;

fn records(rng: &mut StdRng) -> Vec<TraceRecord> {
    let n = rng.gen_range(0usize..200);
    (0..n)
        .map(|_| {
            TraceRecord::new(
                rng.gen_range(0u32..100_000),
                rng.gen_range(0u64..(1 << 38)),
                rng.gen::<bool>(),
            )
        })
        .collect()
}

fn spec(mpki: f64, wf: f64, locality: LocalityModel) -> WorkloadSpec {
    WorkloadSpec {
        name: "prop",
        suite: "prop",
        mpki,
        write_fraction: wf,
        locality,
    }
}

/// USIMM emit/parse is the identity on arbitrary records.
#[test]
fn usimm_roundtrip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let recs = records(&mut rng);
        let mut buf = Vec::new();
        usimm::emit(&recs, &mut buf).expect("emit infallible to Vec");
        let parsed = usimm::parse(buf.as_slice()).expect("own output parses");
        assert_eq!(parsed, recs);
    }
}

/// Generated MPKI converges to the requested value for any target in a
/// sane range, regardless of locality model.
#[test]
fn mpki_is_locality_independent() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case ^ 0x44);
        let mpki = 1.0 + 99.0 * rng.gen::<f64>();
        let locality = match rng.gen_range(0u8..3) {
            0 => LocalityModel::Streaming { streams: 2 },
            1 => LocalityModel::WorkingSet {
                blocks: 4096,
                theta: 0.8,
            },
            _ => LocalityModel::UniformRandom { blocks: 1 << 16 },
        };
        let mut g = TraceGenerator::new(spec(mpki, 0.3, locality), 7, 0);
        let s = summarize(&g.take_records(8000));
        let rel = (s.mpki - mpki).abs() / mpki;
        assert!(rel < 0.12, "mpki {} vs target {}", s.mpki, mpki);
    }
}

/// Write fraction converges for any target.
#[test]
fn write_fraction_converges() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case ^ 0x55);
        let wf = rng.gen::<f64>();
        let mut g = TraceGenerator::new(
            spec(10.0, wf, LocalityModel::UniformRandom { blocks: 1024 }),
            3,
            0,
        );
        let s = summarize(&g.take_records(6000));
        assert!((s.write_fraction - wf).abs() < 0.05);
    }
}

/// Working-set traces never escape their declared footprint.
#[test]
fn working_set_is_respected() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case ^ 0x66);
        let blocks = rng.gen_range(16u64..4096);
        let theta = 1.2 * rng.gen::<f64>();
        let mut g = TraceGenerator::new(
            spec(10.0, 0.2, LocalityModel::WorkingSet { blocks, theta }),
            11,
            2,
        );
        let base = 2 * TraceGenerator::CORE_STRIDE;
        for r in g.take_records(2000) {
            assert!(r.op.block >= base);
            assert!(r.op.block < base + blocks);
        }
    }
}

/// Determinism: same (spec, seed, core) always yields the same trace.
#[test]
fn generation_is_deterministic() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case ^ 0x77);
        let seed = rng.gen::<u64>();
        let core = rng.gen_range(0u32..8);
        let s = spec(
            5.0,
            0.4,
            LocalityModel::Mixed {
                blocks: 512,
                theta: 0.7,
                stream_fraction: 0.5,
                streams: 2,
            },
        );
        let a = TraceGenerator::new(s.clone(), seed, core).take_records(64);
        let b = TraceGenerator::new(s, seed, core).take_records(64);
        assert_eq!(a, b);
    }
}
