//! Property-based tests for trace generation and the USIMM format.

use proptest::prelude::*;

use trace_synth::generator::LocalityModel;
use trace_synth::{summarize, usimm, TraceGenerator, TraceRecord, WorkloadSpec};

fn records() -> impl Strategy<Value = Vec<TraceRecord>> {
    proptest::collection::vec(
        (0u32..100_000, 0u64..(1 << 38), any::<bool>())
            .prop_map(|(gap, block, w)| TraceRecord::new(gap, block, w)),
        0..200,
    )
}

fn spec(mpki: f64, wf: f64, locality: LocalityModel) -> WorkloadSpec {
    WorkloadSpec {
        name: "prop",
        suite: "prop",
        mpki,
        write_fraction: wf,
        locality,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// USIMM emit/parse is the identity on arbitrary records.
    #[test]
    fn usimm_roundtrip(recs in records()) {
        let mut buf = Vec::new();
        usimm::emit(&recs, &mut buf).expect("emit infallible to Vec");
        let parsed = usimm::parse(buf.as_slice()).expect("own output parses");
        prop_assert_eq!(parsed, recs);
    }

    /// Generated MPKI converges to the requested value for any target in a
    /// sane range, regardless of locality model.
    #[test]
    fn mpki_is_locality_independent(
        mpki in 1.0f64..100.0,
        model_sel in 0u8..3,
    ) {
        let locality = match model_sel {
            0 => LocalityModel::Streaming { streams: 2 },
            1 => LocalityModel::WorkingSet { blocks: 4096, theta: 0.8 },
            _ => LocalityModel::UniformRandom { blocks: 1 << 16 },
        };
        let mut g = TraceGenerator::new(spec(mpki, 0.3, locality), 7, 0);
        let s = summarize(&g.take_records(8000));
        let rel = (s.mpki - mpki).abs() / mpki;
        prop_assert!(rel < 0.12, "mpki {} vs target {}", s.mpki, mpki);
    }

    /// Write fraction converges for any target.
    #[test]
    fn write_fraction_converges(wf in 0.0f64..=1.0) {
        let mut g = TraceGenerator::new(
            spec(10.0, wf, LocalityModel::UniformRandom { blocks: 1024 }),
            3,
            0,
        );
        let s = summarize(&g.take_records(6000));
        prop_assert!((s.write_fraction - wf).abs() < 0.05);
    }

    /// Working-set traces never escape their declared footprint.
    #[test]
    fn working_set_is_respected(blocks in 16u64..4096, theta in 0.0f64..1.2) {
        let mut g = TraceGenerator::new(
            spec(10.0, 0.2, LocalityModel::WorkingSet { blocks, theta }),
            11,
            2,
        );
        let base = 2 * TraceGenerator::CORE_STRIDE;
        for r in g.take_records(2000) {
            prop_assert!(r.op.block >= base);
            prop_assert!(r.op.block < base + blocks);
        }
    }

    /// Determinism: same (spec, seed, core) always yields the same trace.
    #[test]
    fn generation_is_deterministic(seed in any::<u64>(), core in 0u32..8) {
        let s = spec(5.0, 0.4, LocalityModel::Mixed {
            blocks: 512, theta: 0.7, stream_fraction: 0.5, streams: 2,
        });
        let a = TraceGenerator::new(s.clone(), seed, core).take_records(64);
        let b = TraceGenerator::new(s, seed, core).take_records(64);
        prop_assert_eq!(a, b);
    }
}
