//! Capacity planner: size an ORAM deployment with the paper's space model.
//!
//! Given a desired protected capacity, prints what each Ring ORAM
//! configuration (the paper's Fig. 4 sweep) actually costs in physical
//! memory, and how much the Compact Bucket claws back (Table V), including
//! the physical footprint after subtree-layout padding.
//!
//! Run with: `cargo run --release --example capacity_planner`

use ring_oram::layout::{SubtreeLayout, TreeLayout};
use ring_oram::RingConfig;
use string_oram::space::{fig4_rows, table5_rows};

fn main() {
    println!("Ring ORAM capacity planning, L = 23 (16.7M buckets), 64 B blocks");
    println!("\n-- Bandwidth-optimal configurations (paper Fig. 4) --");
    println!(
        "{:<10} {:>4} {:>4} {:>4} {:>10} {:>11} {:>10} {:>11}",
        "config", "Z", "A", "S", "real GiB", "dummy GiB", "total GiB", "efficiency"
    );
    for row in fig4_rows() {
        println!(
            "{:<10} {:>4} {:>4} {:>4} {:>10.1} {:>11.1} {:>10.1} {:>10.1}%",
            row.label,
            row.z,
            row.a,
            row.s,
            row.real_gib(),
            row.dummy_gib(),
            row.total_gib(),
            row.efficiency() * 100.0
        );
    }

    println!("\n-- Compact Bucket savings on the default tree (paper Table V) --");
    println!(
        "{:<10} {:>4} {:>10} {:>10} {:>12} {:>14}",
        "config", "Y", "total GiB", "dummy %", "layout GiB", "vs baseline"
    );
    let baseline_layout = layout_gib(&RingConfig::table5_config(0));
    for (i, row) in table5_rows().iter().enumerate() {
        let cfg = RingConfig::table5_config(i as u32);
        let layout = layout_gib(&cfg);
        println!(
            "{:<10} {:>4} {:>10.1} {:>9.1}% {:>12.1} {:>13.1}%",
            row.label,
            row.y,
            row.total_gib(),
            row.dummy_percentage() * 100.0,
            layout,
            (1.0 - layout / baseline_layout) * 100.0
        );
    }

    println!(
        "\nThe Y = 8 Compact Bucket stores the same 8 GiB of real data in 12 GiB \
         of blocks instead of 20 GiB — the paper's 'up to 40% memory space' saving. \
         The physical footprint column includes subtree-layout alignment padding \
         on the paper's 4-channel DDR3 module (16 KiB row sets)."
    );
}

fn layout_gib(cfg: &RingConfig) -> f64 {
    let layout = SubtreeLayout::new(cfg, 16384);
    layout.total_bytes() as f64 / (1u64 << 30) as f64
}
