//! An oblivious patient-record index: demonstrates the `oram-collections`
//! layer and prices it with the timing stack.
//!
//! Scenario (the paper's motivation, made concrete): a hospital keeps a
//! patient-id → record-locator index on untrusted memory. Access-pattern
//! leaks would reveal *which* patients are being looked up and *whether*
//! two queries concern the same patient — exactly what searchable-
//! encryption attacks exploit. The oblivious map makes every lookup cost an
//! identical, key-independent access sequence.
//!
//! Run with: `cargo run --release --example oblivious_index`

use oram_collections::ObliviousMap;
use ring_oram::{RingConfig, RingOram};

fn main() {
    let cfg = RingConfig {
        levels: 16,
        tree_top_cached_levels: 4,
        ..RingConfig::hpca_default()
    };
    let mut index = ObliviousMap::new(cfg.clone(), 4096, 0xC11E17);

    println!("Loading 1000 patient records into the oblivious index...");
    for i in 0..1000u32 {
        index
            .put(
                format!("patient-{i:04}").as_bytes(),
                format!("shard{:02}/rec{i}", i % 7).as_bytes(),
            )
            .expect("index sized for 4096 entries");
    }

    // Query mix: a celebrity patient hammered repeatedly vs uniform lookups
    // — the attacker-visible cost is identical per query.
    let s0 = index.oram().stats().read_paths;
    for _ in 0..50 {
        let r = index.get(b"patient-0007").expect("sized");
        assert!(r.is_some());
    }
    let hot_cost = index.oram().stats().read_paths - s0;

    let s0 = index.oram().stats().read_paths;
    for i in 0..50u32 {
        let _ = index.get(format!("patient-{:04}", i * 13 % 1500).as_bytes());
    }
    let scan_cost = index.oram().stats().read_paths - s0;

    println!("50 hot-key lookups:   {hot_cost} ORAM read paths");
    println!("50 scattered lookups: {scan_cost} ORAM read paths (incl. misses)");
    assert_eq!(
        hot_cost, scan_cost,
        "per-query cost must be key-independent"
    );

    // Price one lookup with the paper's memory system: each ORAM access is
    // a read path of (levels - cached) blocks plus amortized evictions.
    let oram = RingOram::new(cfg.clone(), 1);
    let off_chip = cfg.levels - cfg.tree_top_cached_levels;
    let per_read = off_chip;
    let evict_amortized = (u64::from(cfg.z) + u64::from(cfg.bucket_slots()))
        * u64::from(cfg.levels)
        / u64::from(cfg.a);
    drop(oram);
    println!(
        "\nCost model: one map lookup = {} ORAM accesses x ({per_read} read-path \
         blocks + ~{evict_amortized} amortized eviction blocks).",
        oram_collections::ObliviousMap::PROBES
    );
    println!(
        "On the paper's DDR3-1600 system a read path takes a few hundred bus \
         cycles (see `cargo run --release --bin stringoram` for exact timing), \
         and String ORAM's CB+PB removes ~30-40% of it."
    );
}
