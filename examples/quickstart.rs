//! Quickstart: protect a workload's memory accesses with String ORAM.
//!
//! Builds the paper's default system (Tables I-III), runs a synthetic
//! `black` (PARSEC blackscholes-like) trace through it with both the
//! baseline Ring ORAM and the full String ORAM (CB + PB), and prints the
//! headline comparison.
//!
//! Run with: `cargo run --release --example quickstart`

use string_oram::{Scheme, Simulation, SystemConfig};
use trace_synth::{by_name, TraceGenerator};

fn main() {
    let accesses_per_core = 300;
    let workload = by_name("black").expect("known workload");
    println!(
        "Workload: {} ({}, {:.2} MPKI), {} accesses/core",
        workload.name, workload.suite, workload.mpki, accesses_per_core
    );

    let mut results = Vec::new();
    for scheme in [Scheme::Baseline, Scheme::All] {
        let cfg = SystemConfig::hpca_default(scheme);
        let traces = (0..cfg.cores)
            .map(|c| {
                TraceGenerator::new(workload.clone(), 42, c as u32).take_records(accesses_per_core)
            })
            .collect();
        let mut sim = Simulation::new(cfg, traces);
        sim.set_label(format!("black/{scheme}"));
        let report = sim.run(u64::MAX).expect("simulation completes");
        println!(
            "\n[{scheme}] {} ORAM accesses -> {} memory requests in {} bus cycles",
            report.oram_accesses, report.requests_completed, report.total_cycles
        );
        println!(
            "  cycle breakdown: read {} | evict {} | reshuffle {} | other {}",
            report.cycles_by_kind.read,
            report.cycles_by_kind.evict,
            report.cycles_by_kind.reshuffle,
            report.cycles_by_kind.other
        );
        println!(
            "  read-path row-buffer conflict rate: {:.1}%  (eviction: {:.1}%)",
            report
                .row_class(ring_oram::OpKind::ReadPath)
                .conflict_rate()
                * 100.0,
            report
                .row_class(ring_oram::OpKind::Eviction)
                .conflict_rate()
                * 100.0,
        );
        println!(
            "  bank idle: {:.1}%   mean read-queue wait: {:.0} cycles",
            report.bank_idle_proportion * 100.0,
            report.mean_read_queue_wait
        );
        results.push(report);
    }

    let speedup = 1.0 - results[1].total_cycles as f64 / results[0].total_cycles as f64;
    println!(
        "\nString ORAM (CB+PB) reduced execution time by {:.1}% over baseline Ring ORAM",
        speedup * 100.0
    );
    println!("(the paper reports 30.05% on average across its ten workloads)");
}
