//! Scheme shootout: a miniature of the paper's Fig. 10 on three workloads.
//!
//! Runs Baseline, CB, PB and ALL on `black`, `libq` and `stream`, and
//! prints execution time normalized to the baseline, plus each scheme's
//! distinctive statistics (greens fetched, early PRE/ACT fractions).
//!
//! Run with: `cargo run --release --example scheme_shootout`

use string_oram::{Scheme, Simulation, SystemConfig};
use trace_synth::{by_name, TraceGenerator};

fn main() {
    let n = 250;
    let workloads = ["black", "libq", "stream"];

    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "workload", "scheme", "norm.time", "greens/read", "earlyPRE%", "earlyACT%"
    );
    for w in workloads {
        let spec = by_name(w).expect("known workload");
        let mut baseline_cycles = None;
        for scheme in Scheme::ALL {
            let cfg = SystemConfig::hpca_default(scheme);
            let traces = (0..cfg.cores)
                .map(|c| TraceGenerator::new(spec.clone(), 7, c as u32).take_records(n))
                .collect();
            let mut sim = Simulation::new(cfg, traces);
            sim.set_label(format!("{w}/{scheme}"));
            let r = sim.run(u64::MAX).expect("completes");
            let base = *baseline_cycles.get_or_insert(r.total_cycles);
            println!(
                "{:<10} {:>10} {:>10.3} {:>12.2} {:>12.1} {:>12.1}",
                w,
                scheme.label(),
                r.total_cycles as f64 / base as f64,
                r.protocol.greens_per_read(),
                r.early_precharge_fraction * 100.0,
                r.early_activate_fraction * 100.0
            );
        }
        println!();
    }
    println!("Paper reference (Fig. 10 average): CB 0.88, PB 0.81, ALL 0.70.");
}
