//! An oblivious key-value store built on the Ring ORAM protocol engine.
//!
//! This example uses `ring-oram`'s public API directly (no timing
//! simulation) to build a tiny KV store whose storage accesses are
//! obfuscated, then *demonstrates the security property the paper relies
//! on*: the physical access sequence leaving the trusted boundary is
//! statistically indistinguishable between two very different query
//! patterns — one hammering a single hot key, one scanning uniformly.
//!
//! Run with: `cargo run --release --example secure_kv_store`

use std::collections::HashMap;

use ring_oram::{BlockId, OpKind, RingConfig, RingOram};

/// A key-value store that maps string keys to 64-byte "rows" stored as
/// ORAM blocks. The values physically travel through the ORAM's stash and
/// buckets (encrypted at rest with the E/D logic), so a protocol bug would
/// corrupt them — the asserts below are real end-to-end checks.
struct ObliviousKv {
    oram: RingOram,
    directory: HashMap<String, BlockId>,
    next_block: u64,
}

impl ObliviousKv {
    fn new(seed: u64) -> Self {
        let cfg = RingConfig {
            levels: 16,
            tree_top_cached_levels: 4,
            ..RingConfig::hpca_default()
        };
        let mut oram = RingOram::new(cfg, seed);
        oram.enable_aes_encryption(*b"demo-kv-store-16");
        Self {
            oram,
            directory: HashMap::new(),
            next_block: 0,
        }
    }

    /// Stores `value` under `key`; returns the bucket touches generated.
    fn put(&mut self, key: &str, value: [u8; 64]) -> usize {
        let block = *self.directory.entry(key.to_owned()).or_insert_with(|| {
            let b = BlockId(self.next_block);
            self.next_block += 1;
            b
        });
        let outcome = self.oram.write_block(block, &value);
        outcome.plans.iter().map(|p| p.touches.len()).sum()
    }

    /// Fetches the value for `key`, if present.
    fn get(&mut self, key: &str) -> Option<[u8; 64]> {
        let block = *self.directory.get(key)?;
        let (_, data) = self.oram.read_block(block);
        data.map(|d| d.try_into().expect("64-byte rows"))
    }

    fn oram(&self) -> &RingOram {
        &self.oram
    }
}

/// Runs `queries` GETs against a fresh store pre-populated with `keys`
/// keys, selecting keys with `pick`, and returns the observable access
/// profile: (level-sum of touched buckets, reads, writes).
fn observe(pick: impl Fn(usize, usize) -> usize, keys: usize, queries: usize) -> (f64, u64, u64) {
    let mut kv = ObliviousKv::new(99);
    for i in 0..keys {
        let mut v = [0u8; 64];
        v[0] = i as u8;
        kv.put(&format!("key-{i}"), v);
    }
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut ops = 0u64;
    let start_reads = kv.oram().stats().read_paths;
    for q in 0..queries {
        let key = format!("key-{}", pick(q, keys));
        let v = kv.get(&key).expect("key present");
        assert_eq!(v[0], pick(q, keys) as u8, "stored value survives ORAM");
        ops += 1;
    }
    let _ = start_reads;
    let s = kv.oram().stats();
    reads += s.read_paths;
    writes += s.evictions;
    (ops as f64, reads, writes)
}

fn main() {
    let keys = 256;
    let queries = 512;

    // Two adversarially different logical patterns.
    println!("Populating two identical stores with {keys} keys, querying {queries} times...");
    let (hot_ops, hot_reads, hot_evicts) = observe(|_, _| 7, keys, queries);
    let (scan_ops, scan_reads, scan_evicts) = observe(|q, k| q % k, keys, queries);

    println!("\nObservable memory-side profile (what an attacker on the bus sees):");
    println!("{:<28} {:>12} {:>12}", "", "hot-key GETs", "uniform scan");
    println!("{:<28} {:>12} {:>12}", "logical queries", hot_ops, scan_ops);
    println!(
        "{:<28} {:>12} {:>12}",
        "read-path transactions", hot_reads, scan_reads
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "eviction transactions", hot_evicts, scan_evicts
    );
    assert_eq!(hot_reads, scan_reads, "same number of read paths");
    assert_eq!(hot_evicts, scan_evicts, "same number of evictions");
    println!(
        "\nIdentical transaction counts and per-transaction shapes: repeatedly \
         reading ONE hot key is indistinguishable from scanning all {keys} keys."
    );

    // Show the per-operation footprint the paper optimizes.
    let mut kv = ObliviousKv::new(1);
    let touches = kv.put("demo", [42; 64]);
    let cfg_levels = 16 - 4; // off-chip levels in this store
    println!(
        "\nEach logical access costs about {touches} physical block touches \
         ({cfg_levels} off-chip levels/read path, amortized evictions every A=8 reads)."
    );
    let _ = kv.get("demo");
    let stats = kv.oram().stats();
    println!(
        "Operation log so far: {} read paths, {} evictions, {} early reshuffles (kind {:?} is on the critical path).",
        stats.read_paths,
        stats.evictions,
        stats.early_reshuffles,
        OpKind::ReadPath.label(),
    );
    println!(
        "E/D logic: {} block encryptions, {} decryptions (values are ciphertext at rest).",
        stats.encryptions, stats.decryptions
    );
}
