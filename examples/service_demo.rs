//! Service demo: four tenants riding out an overload burst.
//!
//! Builds the multi-tenant `oram-service` front-end over the sharded
//! String ORAM engine, drives four differently-shaped tenants through a
//! burst that overwhelms the submission rate, and prints how the overload
//! governor degraded, what each tenant experienced, and what the
//! fixed-rate padding policy would have cost for the same population.
//!
//! Run with: `cargo run --release --example service_demo`

use oram_service::{OramService, ServiceConfig, SubmissionPolicy, TenantSpec};
use string_oram::ServiceSummary;
use trace_synth::ArrivalSpec;

fn tenants() -> Vec<TenantSpec> {
    vec![
        // A steady interactive tenant that wants predictable latency.
        TenantSpec::new("interactive", ArrivalSpec::steady(6.0)),
        // A bursty batch tenant: 8x multiplier bursts drive the overload.
        TenantSpec::new("batch", ArrivalSpec::bursty(12.0, 8.0)),
        // A diurnal tenant sweeping through its daily peak.
        TenantSpec::new("diurnal", ArrivalSpec::diurnal(12.0, 4_000, 0.9)),
        // A background trickle that should barely notice the storm.
        TenantSpec::new("trickle", ArrivalSpec::steady(1.0)),
    ]
}

fn configure(policy: SubmissionPolicy) -> ServiceConfig {
    let mut cfg = ServiceConfig::test_small(tenants(), 16_000);
    cfg.policy = policy;
    cfg.deadline_cycles = 4_000;
    cfg.retry_budget = 1;
    // Let the storm climb the whole ladder: the degraded quota still
    // admits enough for total pressure to reach the shed watermark.
    cfg.governor.degrade_enter = 0.5;
    cfg.governor.degrade_exit = 0.25;
    cfg.governor.shed_enter = 0.8;
    cfg.governor.shed_exit = 0.4;
    cfg.governor.degraded_quota = 0.9;
    cfg
}

fn print_summary(summary: &ServiceSummary) {
    println!(
        "  {} ticks, {} real + {} padding accesses ({:.1}% padding overhead)",
        summary.ticks,
        summary.real_accesses,
        summary.padding_accesses,
        summary.padding_overhead() * 100.0
    );
    let g = summary.governor;
    println!(
        "  governor: {} degraded entries, {} shed entries, {} recoveries",
        g.degraded_entries, g.shed_entries, g.recoveries
    );
    println!(
        "  {:<12} {:>8} {:>8} {:>8} {:>7} {:>9} {:>7} {:>8} {:>8} {:>8}",
        "tenant", "arrived", "done", "timeout", "shed", "throttled", "full", "p50", "p99", "p999"
    );
    for t in &summary.tenants {
        println!(
            "  {:<12} {:>8} {:>8} {:>8} {:>7} {:>9} {:>7} {:>8} {:>8} {:>8}",
            t.tenant,
            t.arrivals,
            t.completed,
            t.timed_out,
            t.rejected_shed,
            t.rejected_throttled,
            t.rejected_queue_full,
            t.latency.p50,
            t.latency.p99,
            t.latency.p999
        );
    }
}

fn main() {
    println!("oram-service: 4 tenants through an overload burst\n");

    for policy in [
        SubmissionPolicy::BestEffort { batch: 4 },
        SubmissionPolicy::FixedRate {
            interval: 24,
            batch: 1,
        },
    ] {
        let cfg = configure(policy);
        let mut service = OramService::new(cfg).expect("valid config");
        let report = service.run().expect("terminates");
        let summary = report.service.as_ref().expect("service summary");
        println!("-- {} --", summary.policy);
        print_summary(summary);
        println!(
            "  schedule digest {:#018x}, {} violations, final state: {}\n",
            summary.schedule_digest,
            report.violations.len(),
            service.governor_state().label()
        );
        assert!(
            report.violations.is_empty(),
            "auditors must stay clean: {:?}",
            report.violations
        );
    }

    println!(
        "Every arrival resolved exactly once in both runs; the fixed-rate\n\
         envelope is a pure function of the clock (same digest for any load),\n\
         bought with the padding overhead printed above."
    );
}
