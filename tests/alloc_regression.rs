//! Allocation-regression test: a steady-state ORAM access performs **zero
//! heap allocations** — for every protocol engine the pipeline can host.
//!
//! The five-stage pipeline and the protocol engines (Ring+CB, Path,
//! Circuit) pool every per-access buffer (plan vectors, slot-touch lists,
//! request buffers, eviction scratch, sealed-payload boxes) and
//! pre-reserve the vectors that grow with the trace. This test pins that
//! property with a counting global allocator: after a warm-up prefix that
//! materializes the tree, grows the stash to its working set and fills
//! every pool, a window of further accesses must not allocate at all.
//!
//! This file contains exactly one test and is its own test binary, so no
//! concurrently running test can attribute its allocations to the window;
//! the protocols are measured sequentially inside that one test.
//!
//! The functional backend is used because the measurement targets the
//! protocol/pipeline hot path; the cycle-accurate DRAM model's per-cycle
//! bookkeeping is exercised (and pooled) elsewhere. Conformance checking
//! is off, as in benchmark configurations — verification deliberately
//! records streams, which allocates.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use string_oram::{BackendKind, ProtocolKind, Scheme, Simulation, SystemConfig, VerifyConfig};
use trace_synth::{by_name, TraceGenerator};

/// Heap allocations observed since process start (allocs + reallocs;
/// frees are not counted — a steady state may *return* memory, it may
/// not *request* any).
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to `System`, only incrementing an
// atomic counter on the allocation paths.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Warm one protocol's pipeline until its tree is fully materialized, then
/// assert a window of further accesses allocates nothing.
///
/// `levels` is chosen per protocol so the trace can complete
/// materialization during warm-up: buckets materialize lazily on first
/// touch (an inherently allocating event that preserves the pinned RNG
/// stream), so the tree must be *complete* before a window of accesses can
/// be allocation-free. Ring's background evictions sweep leaves in
/// reverse-lexicographic order and finish a 10-level tree easily; Path
/// ORAM only ever touches the accessed path, so materializing is a
/// coupon-collector pass over the leaves and gets one level less.
fn assert_steady_state_window(protocol: ProtocolKind, levels: u32) {
    const RECORDS_PER_CORE: usize = 4000;
    const MEASURED_ACCESSES: u64 = 100;

    let mut cfg = SystemConfig::test_small(Scheme::All);
    cfg.protocol = protocol;
    cfg.ring.levels = levels;
    cfg.backend = BackendKind::FastFunctional;
    cfg.verify = VerifyConfig::off();
    let total_buckets = (1usize << levels) - 1;
    let traces: Vec<_> = (0..cfg.cores)
        .map(|c| {
            TraceGenerator::new(by_name("black").unwrap(), 11, c as u32)
                .take_records(RECORDS_PER_CORE)
        })
        .collect();
    let total = (RECORDS_PER_CORE * cfg.cores) as u64;
    let mut sim = Simulation::new(cfg, traces);

    // Warm up until every bucket is materialized: stash high-water growth,
    // pool filling and hash-map resizing also all happen here.
    while sim.protocol().materialized_buckets() < total_buckets && !sim.is_finished() {
        sim.step();
    }
    assert_eq!(
        sim.protocol().materialized_buckets(),
        total_buckets,
        "{protocol}: trace too short to materialize the tree"
    );
    assert!(
        sim.oram_accesses() + MEASURED_ACCESSES < total,
        "{protocol}: trace too short: nothing left to measure"
    );
    let warmed = sim.oram_accesses();

    // The measured window: every planned access, eviction, reshuffle and
    // retirement in here must come out of pooled memory.
    let baseline = ALLOCATIONS.load(Ordering::SeqCst);
    while sim.oram_accesses() < warmed + MEASURED_ACCESSES && !sim.is_finished() {
        sim.step();
    }
    let during = ALLOCATIONS.load(Ordering::SeqCst) - baseline;
    let measured = sim.oram_accesses() - warmed;
    assert!(
        measured >= MEASURED_ACCESSES.min(total - warmed),
        "{protocol}: window too small: {measured} accesses"
    );
    assert_eq!(
        during, 0,
        "{protocol}: steady state allocated {during} times across {measured} accesses"
    );

    // The run ends here rather than draining the trace: this workload's
    // working set keeps growing and would eventually exceed what the
    // deliberately small tree can hold. The steady-state window above is
    // the pinned property.
    assert_eq!(sim.oram_accesses(), warmed + measured);
}

#[test]
fn steady_state_access_performs_no_heap_allocation() {
    // A 10-level tree (1023 buckets) is small enough that the trace fully
    // materializes it during warm-up; `test_small`'s 14-level tree would
    // need a coupon-collector pass over 8192 leaves to get there. Path
    // ORAM has no background sweep, so it gets a 9-level tree (255 leaves)
    // to keep the coupon-collector phase inside the trace.
    assert_steady_state_window(ProtocolKind::RingCb, 10);
    assert_steady_state_window(ProtocolKind::Path, 9);
    assert_steady_state_window(ProtocolKind::Circuit, 10);
}
