//! Allocation-regression test: a steady-state ORAM access performs **zero
//! heap allocations** — for every protocol engine the pipeline can host.
//!
//! The five-stage pipeline and the protocol engines (Ring+CB, Path,
//! Circuit) pool every per-access buffer (plan vectors, slot-touch lists,
//! request buffers, eviction scratch, sealed-payload boxes) and
//! pre-reserve the vectors that grow with the trace. This test pins that
//! property with a counting global allocator: after a warm-up prefix that
//! materializes the tree, grows the stash to its working set and fills
//! every pool, a window of further accesses must not allocate at all.
//!
//! This file contains exactly one test and is its own test binary, so no
//! concurrently running test can attribute its allocations to the window;
//! the protocols are measured sequentially inside that one test.
//!
//! The functional backend is used because the measurement targets the
//! protocol/pipeline hot path; the cycle-accurate DRAM model's per-cycle
//! bookkeeping is exercised (and pooled) elsewhere. Conformance checking
//! is off, as in benchmark configurations — verification deliberately
//! records streams, which allocates.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dram_sim::geometry::DramGeometry;
use dram_sim::timing::TimingParams;
use dram_sim::{AddressMapping, DramLocation, DramModule};
use mem_sched::{MemoryController, RequestSpec, SchedulerPolicy, TxnId};
use string_oram::{BackendKind, ProtocolKind, Scheme, Simulation, SystemConfig, VerifyConfig};
use trace_synth::{by_name, TraceGenerator};

/// Heap allocations observed since process start (allocs + reallocs;
/// frees are not counted — a steady state may *return* memory, it may
/// not *request* any).
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to `System`, only incrementing an
// atomic counter on the allocation paths.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Warm one protocol's pipeline until its tree is fully materialized, then
/// assert a window of further accesses allocates nothing.
///
/// `levels` is chosen per protocol so the trace can complete
/// materialization during warm-up: buckets materialize lazily on first
/// touch (an inherently allocating event that preserves the pinned RNG
/// stream), so the tree must be *complete* before a window of accesses can
/// be allocation-free. Ring's background evictions sweep leaves in
/// reverse-lexicographic order and finish a 10-level tree easily; Path
/// ORAM only ever touches the accessed path, so materializing is a
/// coupon-collector pass over the leaves and gets one level less.
fn assert_steady_state_window(protocol: ProtocolKind, levels: u32) {
    const RECORDS_PER_CORE: usize = 4000;
    const MEASURED_ACCESSES: u64 = 100;

    let mut cfg = SystemConfig::test_small(Scheme::All);
    cfg.protocol = protocol;
    cfg.ring.levels = levels;
    cfg.backend = BackendKind::FastFunctional;
    cfg.verify = VerifyConfig::off();
    let total_buckets = (1usize << levels) - 1;
    let traces: Vec<_> = (0..cfg.cores)
        .map(|c| {
            TraceGenerator::new(by_name("black").unwrap(), 11, c as u32)
                .take_records(RECORDS_PER_CORE)
        })
        .collect();
    let total = (RECORDS_PER_CORE * cfg.cores) as u64;
    let mut sim = Simulation::new(cfg, traces);

    // Warm up until every bucket is materialized: stash high-water growth,
    // pool filling and hash-map resizing also all happen here.
    while sim.protocol().materialized_buckets() < total_buckets && !sim.is_finished() {
        sim.step();
    }
    assert_eq!(
        sim.protocol().materialized_buckets(),
        total_buckets,
        "{protocol}: trace too short to materialize the tree"
    );
    assert!(
        sim.oram_accesses() + MEASURED_ACCESSES < total,
        "{protocol}: trace too short: nothing left to measure"
    );
    let warmed = sim.oram_accesses();

    // The measured window: every planned access, eviction, reshuffle and
    // retirement in here must come out of pooled memory.
    let baseline = ALLOCATIONS.load(Ordering::SeqCst);
    while sim.oram_accesses() < warmed + MEASURED_ACCESSES && !sim.is_finished() {
        sim.step();
    }
    let during = ALLOCATIONS.load(Ordering::SeqCst) - baseline;
    let measured = sim.oram_accesses() - warmed;
    assert!(
        measured >= MEASURED_ACCESSES.min(total - warmed),
        "{protocol}: window too small: {measured} accesses"
    );
    assert_eq!(
        during, 0,
        "{protocol}: steady state allocated {during} times across {measured} accesses"
    );

    // The run ends here rather than draining the trace: this workload's
    // working set keeps growing and would eventually exceed what the
    // deliberately small tree can hold. The steady-state window above is
    // the pinned property.
    assert_eq!(sim.oram_accesses(), warmed + measured);
}

/// Enqueues one batch of mixed-direction transactions and runs the
/// controller dry, draining completions into the caller's reused buffer.
fn run_batch(
    ctrl: &mut MemoryController,
    mapping: &AddressMapping,
    out: &mut Vec<mem_sched::Completed>,
    cycle: &mut u64,
    first_txn: u64,
) {
    for t in 0..8u64 {
        for i in 0..4u64 {
            let loc = DramLocation {
                channel: (i % 2) as u32,
                rank: 0,
                bank: ((t + i) % 4) as u32,
                row: (t * 7 + i) % 64,
                column: (i % 8) as u32,
            };
            ctrl.try_enqueue(
                RequestSpec {
                    addr: mapping.encode(&loc),
                    is_write: i % 3 == 0,
                    txn: TxnId(first_txn + t),
                },
                *cycle,
            )
            .unwrap();
        }
    }
    while ctrl.pending() > 0 {
        ctrl.tick(*cycle);
        ctrl.drain_completed_into(out);
        out.clear();
        *cycle += 1;
        assert!(*cycle < 1_000_000, "scheduler wedged");
    }
}

/// Controller-direct window for one scheduling policy: after a warm-up
/// batch fills the queue slab, the channel caches and the completion
/// buffer, a second batch scheduled through the `SchedulePolicy` trait
/// object must not allocate — per-tick planning, candidate iteration and
/// policy-local stats all live in pre-sized state.
fn assert_controller_steady_state(policy: SchedulerPolicy) {
    let geometry = DramGeometry::test_small();
    let mapping = AddressMapping::hpca_default(&geometry);
    let dram = DramModule::new(geometry, TimingParams::test_fast());
    let mut ctrl = MemoryController::new(dram, mapping, policy, 64);
    let encode = AddressMapping::hpca_default(&DramGeometry::test_small());
    let mut out = Vec::with_capacity(64);
    let mut cycle = 0u64;

    run_batch(&mut ctrl, &encode, &mut out, &mut cycle, 0);

    let baseline = ALLOCATIONS.load(Ordering::SeqCst);
    run_batch(&mut ctrl, &encode, &mut out, &mut cycle, 8);
    let during = ALLOCATIONS.load(Ordering::SeqCst) - baseline;
    assert_eq!(
        during,
        0,
        "{}: steady-state scheduling allocated {during} times",
        ctrl.policy_name()
    );
}

#[test]
fn steady_state_access_performs_no_heap_allocation() {
    // A 10-level tree (1023 buckets) is small enough that the trace fully
    // materializes it during warm-up; `test_small`'s 14-level tree would
    // need a coupon-collector pass over 8192 leaves to get there. Path
    // ORAM has no background sweep, so it gets a 9-level tree (255 leaves)
    // to keep the coupon-collector phase inside the trace.
    assert_steady_state_window(ProtocolKind::RingCb, 10);
    assert_steady_state_window(ProtocolKind::Path, 9);
    assert_steady_state_window(ProtocolKind::Circuit, 10);

    // The scheduler-policy lab rides in the same binary (same single-test
    // isolation): trait-object dispatch through every policy must stay
    // zero-alloc on the cycle-accurate controller's hot path.
    assert_controller_steady_state(SchedulerPolicy::TransactionBased);
    assert_controller_steady_state(SchedulerPolicy::ProactiveBank { lookahead: 1 });
    assert_controller_steady_state(SchedulerPolicy::ReadOverWrite { drain_bound: 4 });
    assert_controller_steady_state(SchedulerPolicy::SpeculativeWindow { window: 4 });
    assert_controller_steady_state(SchedulerPolicy::FixedCadence { period: 2 });
}
