//! Backend-differential tests: the cycle-accurate and fast functional
//! memory backends must observe the **identical** ORAM access sequence and
//! program work.
//!
//! The ORAM security argument requires the bus-visible access sequence to
//! be a function of the protocol alone — memory timing may change *when*
//! things happen, never *what* happens. The pipeline encodes that by
//! construction (the planner never sees the backend); these tests pin it
//! empirically by running the same trace over both backends and comparing:
//!
//! * the planner's FNV-1a access digest (transaction kinds, physical
//!   addresses, directions, in order);
//! * the transaction counts by kind and the protocol statistics (block
//!   movements: evictions, reshuffles, green fetches, stash samples);
//! * instructions retired (program work);
//! * conformance cleanliness (the txn-order oracle runs on both).
//!
//! A single core keeps the access order a pure function of the trace:
//! with several cores the *interleaving* of accesses legitimately depends
//! on per-core stall times, which differ between timing models.

use string_oram::{BackendKind, Scheme, Simulation, SystemConfig};
use trace_synth::{by_name, TraceGenerator};

/// Golden access digest of the canonical multi-core unsharded run
/// (`test_small`, ALL scheme, two cores, workload `black`, trace seed 11,
/// 200 records per core, cycle-accurate backend). Together with the
/// sharded golden in `shard_differential`, this pins the unsharded
/// pipeline's bus-visible sequence across refactors: hot-path
/// optimizations (scratch-buffer pooling, batched crypto, parallel
/// construction) must be bit-invisible here.
const UNSHARDED_GOLDEN_DIGEST: u64 = 0x6632_9065_CDEB_1FBB;

#[test]
fn unsharded_golden_digest_is_pinned() {
    let cfg = SystemConfig::test_small(Scheme::All);
    let traces = (0..cfg.cores)
        .map(|c| TraceGenerator::new(by_name("black").unwrap(), 11, c as u32).take_records(200))
        .collect();
    let mut sim = Simulation::new(cfg, traces);
    sim.run(50_000_000).expect("canonical run completes");
    assert_eq!(
        sim.access_digest(),
        UNSHARDED_GOLDEN_DIGEST,
        "unsharded access digest moved off the golden value: 0x{:016X}",
        sim.access_digest()
    );
}

fn single_core_cfg(scheme: Scheme, backend: BackendKind) -> SystemConfig {
    let mut cfg = SystemConfig::test_small(scheme);
    cfg.cores = 1;
    cfg.backend = backend;
    cfg
}

fn run_pair(scheme: Scheme, records: usize) -> (Simulation, Simulation) {
    let trace = |_: &SystemConfig| {
        vec![TraceGenerator::new(by_name("black").unwrap(), 11, 0).take_records(records)]
    };
    let cfg_slow = single_core_cfg(scheme, BackendKind::CycleAccurate);
    let mut slow = Simulation::new(cfg_slow.clone(), trace(&cfg_slow));
    let cfg_fast = single_core_cfg(scheme, BackendKind::FastFunctional);
    let mut fast = Simulation::new(cfg_fast.clone(), trace(&cfg_fast));
    slow.run(50_000_000).expect("cycle-accurate completes");
    fast.run(50_000_000).expect("functional completes");
    (slow, fast)
}

fn assert_identical_observable_behavior(scheme: Scheme) {
    let (slow, fast) = run_pair(scheme, 200);
    let (rs, rf) = (slow.report(), fast.report());

    // Bit-identical bus-observable access sequence.
    assert_eq!(
        slow.access_digest(),
        fast.access_digest(),
        "{scheme}: access digests diverge"
    );
    assert_eq!(slow.oram_accesses(), fast.oram_accesses());

    // Identical transaction mix and protocol-level block movements.
    assert_eq!(rs.transactions_by_kind, rf.transactions_by_kind);
    assert_eq!(rs.protocol, rf.protocol, "{scheme}: protocol stats diverge");

    // Identical program work.
    assert_eq!(rs.instructions, rf.instructions);
    assert_eq!(rs.oram_accesses, rf.oram_accesses);

    // Both clean under conformance (txn-order oracle runs on both; the
    // JEDEC shadow additionally on the cycle-accurate one).
    assert!(rs.violations.is_empty(), "{:?}", rs.violations);
    assert!(rf.violations.is_empty(), "{:?}", rf.violations);

    // Same number of memory requests served.
    assert_eq!(rs.requests_completed, rf.requests_completed);

    // The timing models differ, so cycle counts may — but both finish.
    assert!(rs.total_cycles > 0 && rf.total_cycles > 0);
}

#[test]
fn baseline_backends_agree() {
    assert_identical_observable_behavior(Scheme::Baseline);
}

#[test]
fn all_scheme_backends_agree() {
    assert_identical_observable_behavior(Scheme::All);
}

/// Row-class *totals* must agree per kind (same requests classified), even
/// though the hit/miss/conflict split legitimately differs between timing
/// models (the functional backend never loses rows to refresh).
#[test]
fn request_counts_per_kind_agree() {
    let (slow, fast) = run_pair(Scheme::All, 150);
    let (rs, rf) = (slow.report(), fast.report());
    for (kind, s) in &rs.row_class_by_kind {
        let f = rf.row_class_by_kind.get(kind).copied().unwrap_or_default();
        assert_eq!(s.total(), f.total(), "{kind}: classified request counts");
    }
}

/// The functional backend is a different *timing* model, not a different
/// machine: its per-kind cycle attribution must still sum to its total.
#[test]
fn functional_backend_accounts_every_cycle() {
    let (_, fast) = run_pair(Scheme::Baseline, 100);
    let r = fast.report();
    assert_eq!(r.cycles_by_kind.total(), r.total_cycles);
    assert_eq!(
        r.energy.total_uj(),
        0.0,
        "no DRAM model, no energy estimate"
    );
    assert_eq!(r.bank_idle_proportion, 0.0);
}

/// Determinism of the pair: re-running either backend reproduces its own
/// digest and cycle count exactly.
#[test]
fn differential_pair_is_deterministic() {
    let (slow1, fast1) = run_pair(Scheme::All, 100);
    let (slow2, fast2) = run_pair(Scheme::All, 100);
    assert_eq!(slow1.access_digest(), slow2.access_digest());
    assert_eq!(fast1.access_digest(), fast2.access_digest());
    assert_eq!(slow1.cycles(), slow2.cycles());
    assert_eq!(fast1.cycles(), fast2.cycles());
}
