//! Adversarial stash-safety tests for the Compact Bucket optimization.
//!
//! CB trades per-bucket slack (`Y` fewer physical slots) for capacity, so
//! the risk it must be audited against is stash growth: a hot set hammered
//! with a Zipf skew maximizes early/forced reshuffles and green-block
//! traffic, which is exactly where a CB accounting bug would leak blocks
//! into the stash. Every access stream here is audited by the independent
//! `sim-verify` checkers and must finish with zero violations and a
//! bounded stash.

use oram_rng::{Rng, StdRng};
use ring_oram::{BlockId, RingConfig, RingOram};
use sim_verify::OramAuditor;
use string_oram::{Scheme, Simulation, SystemConfig};
use trace_synth::generator::LocalityModel;
use trace_synth::{TraceGenerator, TraceRecord, WorkloadSpec};

const SEEDS: [u64; 4] = [2, 19, 31, 53];

/// Zipf(θ) sampler over ranks `0..n` via the inverse-CDF of precomputed
/// cumulative weights (exact, no rejection).
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, theta: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        for w in &mut cdf {
            *w /= acc;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u = rng.gen::<f64>();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Protocol-level audit: a heavily skewed hot set (Zipf θ = 1.2 over 16
/// blocks, 90% of traffic) drives the CB protocol through thousands of
/// accesses while the independent auditor watches every plan. The stash
/// must stay within its configured bound the whole time.
#[test]
fn zipf_hot_set_keeps_cb_stash_bounded() {
    for &seed in &SEEDS {
        for config in [RingConfig::test_small_cb(), RingConfig::test_small()] {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut oram = RingOram::new(config.clone(), seed ^ 0xCB);
            let mut auditor = OramAuditor::new(config.clone());
            let zipf = Zipf::new(16, 1.2);
            let cold_span = config.real_capacity_blocks() / 2;
            let mut peak_stash = 0usize;
            for _ in 0..2500 {
                let block = if rng.gen_bool(0.9) {
                    zipf.sample(&mut rng) as u64
                } else {
                    16 + rng.gen_range(0..cold_span.max(1))
                };
                let outcome = oram.access(BlockId(block));
                auditor.observe_access(&outcome.plans);
                auditor.observe_stash(oram.stash_len());
                peak_stash = peak_stash.max(oram.stash_len());
            }
            assert!(
                auditor.is_clean(),
                "seed {seed}: {:?}",
                auditor.violations().first()
            );
            assert!(
                peak_stash <= config.stash_capacity,
                "seed {seed}: peak stash {peak_stash} over bound {}",
                config.stash_capacity
            );
            oram.check_invariants();
        }
    }
}

/// System-level audit: CB and ALL run an adversarial working-set workload
/// (tight footprint, high Zipf skew) with every conformance checker
/// enabled, and must finish violation-free with a bounded stash.
#[test]
fn adversarial_workload_is_violation_free_for_cb_schemes() {
    let spec = WorkloadSpec {
        name: "hotset",
        suite: "adversarial",
        mpki: 60.0,
        write_fraction: 0.5,
        locality: LocalityModel::WorkingSet {
            blocks: 24,
            theta: 1.1,
        },
    };
    for scheme in [Scheme::Cb, Scheme::All] {
        for &seed in &SEEDS[..3] {
            let cfg = SystemConfig::test_small(scheme);
            assert!(cfg.verify.oram_audit, "audit must be on in test presets");
            let stash_capacity = cfg.ring.stash_capacity;
            let traces: Vec<Vec<TraceRecord>> = (0..cfg.cores)
                .map(|c| TraceGenerator::new(spec.clone(), seed, c as u32).take_records(80))
                .collect();
            let mut sim = Simulation::new(cfg, traces);
            sim.set_label(format!("hotset-{scheme:?}-{seed}"));
            let r = sim.run(50_000_000).expect("completes");
            assert!(
                r.violations.is_empty(),
                "{}: first violation: {}",
                r.label,
                r.violations[0]
            );
            let peak = r.protocol.stash_samples.iter().copied().max().unwrap_or(0);
            assert!(
                peak <= stash_capacity,
                "{}: peak stash {peak} over bound {stash_capacity}",
                r.label
            );
        }
    }
}
