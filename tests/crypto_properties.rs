//! Property-based tests of the E/D-logic cipher emulation.

use proptest::prelude::*;

use ring_oram::crypto::BlockCipher;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// seal/open is the identity for any key, nonce and payload.
    #[test]
    fn seal_open_roundtrip(
        key in any::<u64>(),
        nonce in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let c = BlockCipher::new(key);
        let sealed = c.seal(nonce, &data);
        prop_assert_eq!(sealed.len(), data.len() + BlockCipher::NONCE_BYTES);
        prop_assert_eq!(c.open(&sealed).expect("well formed"), data);
    }

    /// Nonempty payloads never appear in the clear inside the ciphertext
    /// body (probabilistic, but a failure would mean a keystream of zeros).
    #[test]
    fn ciphertext_hides_plaintext(
        key in any::<u64>(),
        nonce in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 16..128),
    ) {
        let c = BlockCipher::new(key);
        let sealed = c.seal(nonce, &data);
        prop_assert_ne!(&sealed[BlockCipher::NONCE_BYTES..], data.as_slice());
    }

    /// Different nonces produce different ciphertexts for the same payload
    /// (re-encryption unlinkability, the ORAM requirement).
    #[test]
    fn distinct_nonces_are_unlinkable(
        key in any::<u64>(),
        n1 in any::<u64>(),
        n2 in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 8..64),
    ) {
        prop_assume!(n1 != n2);
        let c = BlockCipher::new(key);
        let a = c.seal(n1, &data);
        let b = c.seal(n2, &data);
        prop_assert_ne!(
            &a[BlockCipher::NONCE_BYTES..],
            &b[BlockCipher::NONCE_BYTES..]
        );
    }

    /// Bit-flipping any ciphertext byte changes the decryption (no silent
    /// aliasing), and flipping a nonce byte garbles the whole payload.
    #[test]
    fn tampering_is_not_silent(
        key in any::<u64>(),
        nonce in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 8..64),
        flip in 0usize..8,
    ) {
        let c = BlockCipher::new(key);
        let mut sealed = c.seal(nonce, &data);
        sealed[BlockCipher::NONCE_BYTES + flip] ^= 0x80;
        let opened = c.open(&sealed).expect("length unchanged");
        prop_assert_ne!(opened, data);
    }
}
