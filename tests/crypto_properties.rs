//! Property-style tests of the E/D-logic cipher emulation, driven by the
//! in-repo deterministic PRNG so the suite runs fully offline.

use oram_rng::{Rng, StdRng};
use ring_oram::crypto::BlockCipher;

const CASES: u64 = 64;

fn random_bytes(rng: &mut StdRng, lo: usize, hi: usize) -> Vec<u8> {
    let len = rng.gen_range(lo..hi);
    (0..len).map(|_| rng.gen::<u8>()).collect()
}

/// seal/open is the identity for any key, nonce and payload.
#[test]
fn seal_open_roundtrip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let key = rng.gen::<u64>();
        let nonce = rng.gen::<u64>();
        let data = random_bytes(&mut rng, 0, 256);
        let c = BlockCipher::new(key);
        let sealed = c.seal(nonce, &data);
        assert_eq!(
            sealed.len(),
            data.len() + BlockCipher::NONCE_BYTES + BlockCipher::TAG_BYTES
        );
        assert_eq!(c.open(&sealed).expect("well formed"), data);
    }
}

/// Nonempty payloads never appear in the clear inside the ciphertext body
/// (probabilistic, but a failure would mean a keystream of zeros).
#[test]
fn ciphertext_hides_plaintext() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case ^ 0x1111);
        let key = rng.gen::<u64>();
        let nonce = rng.gen::<u64>();
        let data = random_bytes(&mut rng, 16, 128);
        let c = BlockCipher::new(key);
        let sealed = c.seal(nonce, &data);
        assert_ne!(
            &sealed[BlockCipher::NONCE_BYTES..][..data.len()],
            data.as_slice()
        );
    }
}

/// Different nonces produce different ciphertexts for the same payload
/// (re-encryption unlinkability, the ORAM requirement).
#[test]
fn distinct_nonces_are_unlinkable() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case ^ 0x2222);
        let key = rng.gen::<u64>();
        let n1 = rng.gen::<u64>();
        let mut n2 = rng.gen::<u64>();
        if n1 == n2 {
            n2 = n2.wrapping_add(1);
        }
        let data = random_bytes(&mut rng, 8, 64);
        let c = BlockCipher::new(key);
        let a = c.seal(n1, &data);
        let b = c.seal(n2, &data);
        assert_ne!(
            &a[BlockCipher::NONCE_BYTES..],
            &b[BlockCipher::NONCE_BYTES..]
        );
    }
}

/// Bit-flipping any ciphertext byte trips the integrity tag (the detection
/// guarantee the fault-injection retry path relies on).
#[test]
fn tampering_is_detected() {
    use ring_oram::crypto::OpenError;
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case ^ 0x3333);
        let key = rng.gen::<u64>();
        let nonce = rng.gen::<u64>();
        let data = random_bytes(&mut rng, 8, 64);
        let flip = rng.gen_range(0usize..8);
        let c = BlockCipher::new(key);
        let mut sealed = c.seal(nonce, &data);
        sealed[BlockCipher::NONCE_BYTES + flip] ^= 0x80;
        assert_eq!(c.open(&sealed), Err(OpenError::TagMismatch));
    }
}
