//! Cross-crate integration tests: traces → protocol → scheduler → DRAM.

use string_oram::{Scheme, Simulation, SystemConfig};
use trace_synth::{all_workloads, by_name, usimm, TraceGenerator, TraceRecord};

fn traces(cfg: &SystemConfig, workload: &str, n: usize, seed: u64) -> Vec<Vec<TraceRecord>> {
    let spec = by_name(workload).expect("workload");
    (0..cfg.cores)
        .map(|c| TraceGenerator::new(spec.clone(), seed, c as u32).take_records(n))
        .collect()
}

#[test]
fn every_scheme_completes_every_workload() {
    for scheme in Scheme::ALL {
        for w in all_workloads() {
            let cfg = SystemConfig::test_small(scheme);
            let t = traces(&cfg, w.name, 30, 5);
            let mut sim = Simulation::new(cfg, t);
            let r = sim
                .run(100_000_000)
                .unwrap_or_else(|e| panic!("{}/{} wedged: {e}", w.name, scheme));
            assert_eq!(r.oram_accesses, 60, "{}/{}", w.name, scheme);
            assert_eq!(r.cycles_by_kind.total(), r.total_cycles);
        }
    }
}

#[test]
fn protocol_invariants_survive_a_full_system_run() {
    for scheme in [Scheme::Baseline, Scheme::All] {
        let cfg = SystemConfig::test_small(scheme);
        let t = traces(&cfg, "freq", 120, 9);
        let mut sim = Simulation::new(cfg, t);
        let _ = sim.run(200_000_000).expect("completes");
        sim.oram().check_invariants();
    }
}

#[test]
fn usimm_traces_drive_the_simulator() {
    // Write a synthetic trace out in USIMM format, parse it back, run it.
    let spec = by_name("swapt").unwrap();
    let mut gen = TraceGenerator::new(spec, 3, 0);
    let original = gen.take_records(50);
    let mut buf = Vec::new();
    usimm::emit(&original, &mut buf).expect("emit");
    let parsed = usimm::parse(buf.as_slice()).expect("parse");
    assert_eq!(parsed, original);

    let mut cfg = SystemConfig::test_small(Scheme::All);
    cfg.cores = 1;
    let mut sim = Simulation::new(cfg, vec![parsed]);
    let r = sim.run(100_000_000).expect("completes");
    assert_eq!(r.oram_accesses, 50);
}

#[test]
fn repeated_blocks_always_return() {
    // A pathological trace that hammers the same 3 blocks: the protocol
    // must keep finding them (stash or tree) without losing any.
    let cfg = SystemConfig::test_small(Scheme::All);
    let hammer: Vec<TraceRecord> = (0..90)
        .map(|i| TraceRecord::new(1, u64::from(i % 3u32), i % 2 == 0))
        .collect();
    let t: Vec<Vec<TraceRecord>> = (0..cfg.cores).map(|_| hammer.clone()).collect();
    let mut sim = Simulation::new(cfg, t);
    let r = sim.run(100_000_000).expect("completes");
    sim.oram().check_invariants();
    // After warmup, repeat accesses must find the block (not "new").
    let found = r.protocol.targets_from_tree
        + r.protocol.targets_from_stash
        + r.protocol.targets_from_treetop;
    assert_eq!(
        r.protocol.new_blocks, 3,
        "3 distinct blocks shared by cores"
    );
    assert_eq!(found + r.protocol.new_blocks, r.oram_accesses);
}

#[test]
fn mixed_core_workloads_complete() {
    // Different workloads per core (a true multi-programmed mix).
    let cfg = SystemConfig::test_small(Scheme::All);
    let specs = ["libq", "stream"];
    let t: Vec<Vec<TraceRecord>> = (0..cfg.cores)
        .map(|c| {
            TraceGenerator::new(by_name(specs[c % specs.len()]).unwrap(), 8, c as u32)
                .take_records(40)
        })
        .collect();
    let mut sim = Simulation::new(cfg, t);
    let r = sim.run(100_000_000).expect("completes");
    assert_eq!(r.oram_accesses, 80);
}

#[test]
fn reports_are_internally_consistent() {
    let cfg = SystemConfig::test_small(Scheme::All);
    let t = traces(&cfg, "face", 80, 2);
    let mut sim = Simulation::new(cfg, t);
    let r = sim.run(100_000_000).expect("completes");

    // Every transaction kind seen in row classes also appears in counts.
    for kind in r.row_class_by_kind.keys() {
        assert!(
            r.transactions_by_kind.contains_key(kind),
            "row-class kind {kind} missing from transaction counts"
        );
    }
    // Request count equals the sum of classified requests.
    let classified: u64 = r.row_class_by_kind.values().map(|c| c.total()).sum();
    assert_eq!(classified, r.requests_completed);
    // Cycle attribution is exhaustive.
    assert_eq!(r.cycles_by_kind.total(), r.total_cycles);
    // Two cores x 80 records.
    assert!(r.transactions_by_kind["read"] >= 160);
}

#[test]
fn single_core_single_access_minimal_case() {
    let mut cfg = SystemConfig::test_small(Scheme::Baseline);
    cfg.cores = 1;
    let t = vec![vec![TraceRecord::new(0, 42, false)]];
    let mut sim = Simulation::new(cfg, t);
    let r = sim.run(1_000_000).expect("completes");
    assert_eq!(r.oram_accesses, 1);
    assert_eq!(r.transactions_by_kind["read"], 1);
    assert!(r.total_cycles > 0);
}

#[test]
fn naive_layout_is_slower_than_subtree() {
    // The layout ablation: the subtree layout must beat naive BFS
    // placement (this is why the paper builds on it).
    let mk = |layout| {
        let mut cfg = SystemConfig::test_small(Scheme::Baseline);
        cfg.layout = layout;
        let t = traces(&cfg, "black", 100, 4);
        let mut sim = Simulation::new(cfg, t);
        sim.run(200_000_000).expect("completes").total_cycles
    };
    let subtree = mk(string_oram::LayoutKind::Subtree);
    let naive = mk(string_oram::LayoutKind::Naive);
    assert!(
        subtree < naive,
        "subtree {subtree} should beat naive {naive}"
    );
}
