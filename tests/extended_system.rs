//! System-level tests of the extension features: DDR4 bank groups,
//! recursion, page policies, MLP and energy — all driving the full
//! cores → ORAM → scheduler → DRAM stack.

use dram_sim::geometry::DramGeometry;
use dram_sim::timing::TimingParams;
use mem_sched::{PagePolicy, SchedulerPolicy};
use string_oram::{RecursionSettings, Scheme, SimReport, Simulation, SystemConfig};
use trace_synth::{by_name, TraceGenerator, TraceRecord};

fn run_with(tweak: impl FnOnce(&mut SystemConfig), n: usize) -> SimReport {
    let mut cfg = SystemConfig::test_small(Scheme::All);
    tweak(&mut cfg);
    let spec = by_name("black").expect("workload");
    let traces: Vec<Vec<TraceRecord>> = (0..cfg.cores)
        .map(|c| TraceGenerator::new(spec.clone(), 77, c as u32).take_records(n))
        .collect();
    let mut sim = Simulation::new(cfg, traces);
    sim.run(500_000_000).expect("completes")
}

#[test]
fn ddr4_bank_groups_run_end_to_end() {
    let r = run_with(
        |cfg| {
            cfg.geometry = DramGeometry {
                channels: 2,
                ranks_per_channel: 1,
                banks_per_rank: 16,
                bank_groups: 4,
                rows_per_bank: 1 << 13,
                columns_per_row: 64,
                column_bytes: 64,
            };
            cfg.timing = TimingParams::ddr4_2400();
        },
        80,
    );
    assert_eq!(r.oram_accesses, 160);
    assert!(r.total_cycles > 0);
    assert_eq!(r.cycles_by_kind.total(), r.total_cycles);
}

#[test]
fn ddr4_timing_changes_results_but_not_correctness() {
    let ddr3 = run_with(|_| {}, 80);
    let ddr4 = run_with(
        |cfg| {
            cfg.geometry.bank_groups = 4;
            cfg.geometry.banks_per_rank = 16;
            cfg.geometry.rows_per_bank >>= 1;
            cfg.timing = TimingParams::ddr4_2400();
        },
        80,
    );
    assert_ne!(ddr3.total_cycles, ddr4.total_cycles);
    assert_eq!(ddr3.oram_accesses, ddr4.oram_accesses);
}

#[test]
fn recursion_composes_with_pb_and_cb() {
    let r = run_with(
        |cfg| {
            cfg.recursion = Some(RecursionSettings {
                tracked_blocks: 1 << 12,
                positions_per_block: 8,
                max_onchip_entries: 1 << 6,
            });
        },
        60,
    );
    // 2 map levels on this config: 3x the read transactions.
    assert_eq!(r.transactions_by_kind["read"], 3 * r.oram_accesses);
    assert!(r.early_precharge_fraction > 0.0, "PB active on map traffic");
    assert!(r.protocol.greens_fetched > 0, "CB active on data traffic");
}

#[test]
fn page_policy_and_unconstrained_compose_with_recursion() {
    // Kitchen-sink configuration: every knob at a non-default value.
    let r = run_with(
        |cfg| {
            cfg.page_policy = PagePolicy::Closed;
            cfg.sched_policy = SchedulerPolicy::Unconstrained;
            cfg.core_mlp = 4;
            cfg.recursion = Some(RecursionSettings {
                tracked_blocks: 1 << 12,
                positions_per_block: 8,
                max_onchip_entries: 1 << 6,
            });
        },
        40,
    );
    assert_eq!(r.oram_accesses, 80);
    let classified: u64 = r.row_class_by_kind.values().map(|c| c.total()).sum();
    assert_eq!(classified, r.requests_completed);
}

#[test]
fn energy_accounting_is_consistent() {
    let r = run_with(|_| {}, 100);
    let e = r.energy;
    assert!(e.total_uj() > 0.0);
    let sum = e.activate_uj + e.read_uj + e.write_uj + e.background_uj + e.refresh_uj;
    assert!((e.total_uj() - sum).abs() < 1e-9);
    // Dynamic read+write energy must track the request volume.
    assert!(e.read_uj > 0.0 && e.write_uj > 0.0);
    // A longer run of the same config consumes more energy.
    let longer = run_with(|_| {}, 200);
    assert!(longer.energy.total_uj() > e.total_uj());
}

#[test]
fn channel_load_is_balanced_by_oram_randomization() {
    let r = run_with(|_| {}, 300);
    assert!(
        r.channel_imbalance < 1.05,
        "uniform paths should balance channels: {}",
        r.channel_imbalance
    );
}

#[test]
fn mlp_drains_inflight_misses_at_trace_end() {
    // Regression guard: with MLP > 1 the simulation must wait for every
    // in-flight miss before declaring completion.
    let r = run_with(|cfg| cfg.core_mlp = 8, 50);
    assert_eq!(r.oram_accesses, 100);
    assert_eq!(r.cycles_by_kind.total(), r.total_cycles);
}
