//! Fault injection end-to-end: the seeded fault schedule is deterministic,
//! the stack absorbs injected faults without tripping any conformance
//! checker, faults never change the program's observable work, and — the
//! negative half — losing a payload (retries disabled) must be flagged by
//! the fault-aware auditor and must abort a `fail_fast` run.

use ring_oram::{BlockId, FaultEvent, ResilienceConfig, RingConfig, RingOram};
use string_oram::{
    ConfigError, FaultConfig, ResilienceSummary, Scheme, ShardedSimulation, SimReport, Simulation,
    SystemConfig,
};
use trace_synth::{by_name, TraceGenerator, TraceRecord};

fn traces_for(
    cfg: &SystemConfig,
    workload: &str,
    seed: u64,
    records: usize,
) -> Vec<Vec<TraceRecord>> {
    (0..cfg.cores)
        .map(|c| {
            TraceGenerator::new(by_name(workload).expect("known workload"), seed, c as u32)
                .take_records(records)
        })
        .collect()
}

/// `test_small` plus an all-layers fault schedule at the given rate.
fn smoke_cfg(scheme: Scheme, fault_seed: u64, rate: f64) -> SystemConfig {
    let mut cfg = SystemConfig::test_small(scheme);
    cfg.faults = Some(FaultConfig::smoke(
        fault_seed,
        rate,
        cfg.ring.stash_capacity,
    ));
    cfg
}

fn run_sim(cfg: SystemConfig, workload: &str, seed: u64, records: usize) -> SimReport {
    let traces = traces_for(&cfg, workload, seed, records);
    let mut sim = Simulation::new(cfg, traces);
    sim.set_label(format!("{workload}-{seed}-faulty"));
    sim.run(50_000_000).expect("faulty run completes")
}

/// The acceptance configuration: every fault class firing hard enough to
/// exercise every counter in a short test run. Refreshes are made frequent
/// so storms occur, every refresh storms, saturation hits every other
/// window, the corruption rate is high, and the retry budget is sized so
/// recovery still always succeeds. Watermarks sit where the degradation
/// machinery actually engages at test-sized stash occupancies.
fn acceptance_cfg() -> SystemConfig {
    let mut cfg = smoke_cfg(Scheme::All, 0xF417, 0.05);
    cfg.timing.t_refi = 1_000;
    if let Some(f) = &mut cfg.faults {
        f.resilience.bit_flip_rate = 0.3;
        f.resilience.max_retries = 6;
        f.resilience.escalation_watermark = 5;
        f.resilience.degrade_watermark = 7;

        f.resilience.resume_watermark = 2;
        f.dram.storm_rate = 1.0;
        f.memctrl.saturation_rate = 0.5;
    }
    cfg
}

/// The headline acceptance run: every fault class active. The run must
/// complete, detect and recover every corruption, exercise every
/// resilience counter and stay violation-free across all checkers.
#[test]
fn faulty_run_recovers_and_stays_violation_free() {
    let r = run_sim(acceptance_cfg(), "black", 11, 80);
    let res = &r.resilience;
    assert!(
        r.violations.is_empty(),
        "{} violations, first: {}",
        r.violations.len(),
        r.violations[0]
    );
    assert!(res.faults_injected > 0, "a 30 % rate must inject faults");
    assert_eq!(
        res.faults_injected, res.faults_detected,
        "every corruption must be caught by the integrity tag"
    );
    assert!(res.fault_retries > 0, "detected faults must be retried");
    assert_eq!(res.faults_unrecovered, 0, "retry budget must suffice");
    assert!(res.faults_recovered > 0, "retries must recover payloads");
    assert!(res.retry_cycles > 0, "retries must cost visible cycles");
    assert!(
        res.background_escalations > 0,
        "escalation watermark unused"
    );
    assert!(res.degraded_entries > 0, "degraded mode never entered");
    assert!(res.degraded_exits > 0, "degraded mode never drained");
    assert!(res.responses_dropped > 0, "no response drops injected");
    assert!(res.responses_delayed > 0, "no late responses injected");
    assert!(res.queue_saturation_windows > 0, "no saturation observed");
    assert!(res.refresh_storms > 0, "no refresh storms injected");
    assert!(res.weak_row_stalls > 0, "no weak-row stalls injected");
    assert!(r.oram_accesses > 0 && r.total_cycles > 0);
}

/// Satellite: the fault schedule is a pure function of its seed. Two runs
/// of the same configuration produce the identical `FaultEvent` log at the
/// protocol level and identical resilience counters (and cycle totals) at
/// the system level; a different fault seed produces a different schedule.
#[test]
fn fault_schedule_is_deterministic() {
    fn fault_log(fault_seed: u64) -> Vec<FaultEvent> {
        let cfg = RingConfig::test_small_cb();
        let mut o = RingOram::with_load_factor(cfg.clone(), 42, 0.5);
        o.enable_encryption(7);
        let mut r = ResilienceConfig::for_stash(cfg.stash_capacity);
        r.fault_seed = fault_seed;
        r.bit_flip_rate = 0.2;
        o.enable_resilience(r);
        let mut log = Vec::new();
        for i in 0..150 {
            let _ = o.access(BlockId(i % 17));
            log.extend(o.take_fault_events());
        }
        log
    }
    let a = fault_log(9);
    assert!(!a.is_empty(), "a 20 % rate must produce fault events");
    assert_eq!(a, fault_log(9), "same seed, same event log");
    assert_ne!(a, fault_log(10), "different seed, different schedule");

    let run = || run_sim(smoke_cfg(Scheme::All, 0xDE7, 0.04), "libq", 23, 60);
    let (r1, r2) = (run(), run());
    assert!(r1.violations.is_empty());
    assert_eq!(r1.resilience, r2.resilience, "resilience counters diverged");
    assert_eq!(r1.total_cycles, r2.total_cycles, "cycle totals diverged");
    assert_eq!(r1.transactions_by_kind, r2.transactions_by_kind);
    assert!(r1.resilience.faults_injected > 0);
}

/// Fault randomness never touches the protocol RNG: a faulty run performs
/// exactly the same program work (accesses and program read transactions)
/// as the fault-free run — faults cost latency, not access-pattern changes.
#[test]
fn faults_do_not_change_program_work() {
    let clean = run_sim(SystemConfig::test_small(Scheme::All), "black", 11, 80);
    let faulty = run_sim(acceptance_cfg(), "black", 11, 80);
    assert!(clean.violations.is_empty() && faulty.violations.is_empty());
    assert_eq!(faulty.oram_accesses, clean.oram_accesses);
    assert_eq!(
        faulty.transactions_by_kind.get("read"),
        clean.transactions_by_kind.get("read"),
        "program read-path transactions must be unaffected by faults"
    );
    assert!(faulty.resilience.faults_injected > 0);
    assert_eq!(clean.resilience, ResilienceSummary::default());
}

/// With every rate at zero the fault plumbing must be a perfect no-op:
/// cycle-identical to a run with fault injection disabled entirely.
#[test]
fn zero_rate_faults_match_fault_free_run() {
    let clean = run_sim(SystemConfig::test_small(Scheme::All), "stream", 47, 60);
    let zero = run_sim(smoke_cfg(Scheme::All, 0xF417, 0.0), "stream", 47, 60);
    assert_eq!(zero.total_cycles, clean.total_cycles);
    assert_eq!(zero.transactions_by_kind, clean.transactions_by_kind);
    assert_eq!(zero.resilience, ResilienceSummary::default());
}

fn no_retry_cfg() -> SystemConfig {
    let mut cfg = smoke_cfg(Scheme::All, 0xBAD, 0.05);
    if let Some(f) = &mut cfg.faults {
        f.resilience.bit_flip_rate = 0.3;
        f.resilience.max_retries = 0;
    }
    cfg
}

/// Satellite (negative): disabling retries while injecting ciphertext
/// flips loses payloads, and the fault-aware auditor must say so.
#[test]
fn unrecovered_faults_are_flagged() {
    let r = run_sim(no_retry_cfg(), "black", 11, 80);
    assert!(r.resilience.faults_injected > 0);
    assert_eq!(r.resilience.fault_retries, 0);
    assert_eq!(
        r.resilience.faults_unrecovered,
        r.resilience.faults_detected
    );
    assert!(
        r.violations.iter().any(|v| v.contains("fault-unrecovered")),
        "lost payloads must trip the fault-unrecovered rule; got: {:?}",
        r.violations.first()
    );
}

/// Same injected defect under `fail_fast`: the run must abort at the first
/// lost payload instead of accumulating violations.
#[test]
#[should_panic(expected = "conformance violation")]
fn unrecovered_fault_trips_fail_fast() {
    let mut cfg = no_retry_cfg();
    cfg.verify.fail_fast = true;
    let traces = traces_for(&cfg, "black", 11, 80);
    let mut sim = Simulation::new(cfg, traces);
    let _ = sim.run(50_000_000);
}

/// The CI fault-matrix smoke: two seeds x two rates, each run must
/// complete, recover everything and stay violation-free.
#[test]
fn fault_matrix_smoke() {
    for fault_seed in [11u64, 97] {
        for rate in [0.01, 0.08] {
            let r = run_sim(smoke_cfg(Scheme::All, fault_seed, rate), "black", 23, 40);
            assert!(
                r.violations.is_empty(),
                "seed {fault_seed} rate {rate}: first violation {}",
                r.violations[0]
            );
            assert_eq!(r.resilience.faults_injected, r.resilience.faults_detected);
            assert_eq!(r.resilience.faults_unrecovered, 0);
        }
    }
}

/// Satellite: `try_new` reports configuration problems as values; `new`
/// stays the panicking wrapper.
#[test]
fn try_new_reports_errors_instead_of_panicking() {
    let mut bad = SystemConfig::test_small(Scheme::Baseline);
    bad.queue_capacity = 0;
    match Simulation::try_new(bad, Vec::new()) {
        Err(ConfigError::Invalid(msg)) => assert!(msg.contains("queue_capacity")),
        other => panic!("expected Invalid, got {other:?}"),
    }

    let cfg = SystemConfig::test_small(Scheme::Baseline);
    match Simulation::try_new(cfg, Vec::new()) {
        Err(
            e @ ConfigError::TraceCount {
                expected: 2,
                got: 0,
            },
        ) => {
            assert!(e.to_string().contains("trace"));
        }
        other => panic!("expected TraceCount, got {other:?}"),
    }
}

/// Sharded fault isolation: faults seeded into exactly one shard (via the
/// per-shard override hook) must not perturb any *other* shard's access
/// sequence or cycle count — shards share no protocol state, no backend
/// and no RNG stream, so a fault is a strictly local event.
fn armed_override(stash_capacity: usize) -> FaultConfig {
    // The smoke schedule plus a bit-flip rate high enough to guarantee
    // transit corruptions within a 100-record run (and the retry budget to
    // recover every one of them).
    let mut fc = FaultConfig::smoke(0xF417, 0.2, stash_capacity);
    fc.resilience.bit_flip_rate = 0.5;
    fc.resilience.max_retries = 6;
    fc
}

#[test]
fn faults_in_one_shard_do_not_perturb_the_others() {
    let build = |faulty: bool| {
        let mut cfg = SystemConfig::test_small(Scheme::All);
        cfg.shards = 2;
        let traces = traces_for(&cfg, "black", 11, 100);
        let overrides = if faulty {
            vec![Some(armed_override(cfg.ring.stash_capacity)), None]
        } else {
            Vec::new()
        };
        let mut sim = ShardedSimulation::try_new_with_shard_faults(cfg, traces, &overrides)
            .expect("valid sharded config");
        sim.run(50_000_000).expect("completes");
        sim
    };
    let clean = build(false);
    let faulty = build(true);

    let fr = faulty.shards()[0].report();
    assert!(
        fr.resilience.faults_injected > 0,
        "the override must arm fault injection in shard 0"
    );
    assert_eq!(
        clean.shards()[1].report().resilience,
        ResilienceSummary::default()
    );
    assert_eq!(
        faulty.shards()[1].report().resilience,
        ResilienceSummary::default()
    );

    // The clean shard is bit-for-bit unperturbed by its faulty neighbor.
    assert_eq!(
        faulty.shard_digests()[1],
        clean.shard_digests()[1],
        "shard 1's access sequence changed when shard 0 took faults"
    );
    assert_eq!(
        faulty.shards()[1].cycles(),
        clean.shards()[1].cycles(),
        "shard 1's cycle count changed when shard 0 took faults"
    );

    // Faults cost latency, not access-pattern changes, even shard-locally.
    assert_eq!(
        faulty.shards()[0].oram_accesses(),
        clean.shards()[0].oram_accesses()
    );
}

/// The merged resilience counters of a sharded run are the per-shard sums:
/// with one faulty and one clean shard, the merge equals the faulty
/// shard's counters exactly — and stays deterministic across repeats.
#[test]
fn merged_resilience_counters_equal_per_shard_sums() {
    let run = || {
        let mut cfg = SystemConfig::test_small(Scheme::All);
        cfg.shards = 2;
        let traces = traces_for(&cfg, "black", 11, 100);
        let overrides = vec![Some(armed_override(cfg.ring.stash_capacity)), None];
        let mut sim = ShardedSimulation::try_new_with_shard_faults(cfg, traces, &overrides)
            .expect("valid sharded config");
        let report = sim.run(50_000_000).expect("completes");
        (sim, report)
    };
    let (sim, merged) = run();
    assert!(merged.violations.is_empty(), "{:?}", merged.violations);

    let s0 = sim.shards()[0].report().resilience;
    let s1 = sim.shards()[1].report().resilience;
    assert!(s0.faults_injected > 0);
    assert_eq!(s1, ResilienceSummary::default());
    // sum = s0 + zeros, so the merge must reproduce s0 field for field.
    assert_eq!(
        merged.resilience, s0,
        "merged resilience is not the shard sum"
    );
    assert_eq!(
        merged.resilience.faults_injected,
        s0.faults_injected + s1.faults_injected
    );
    assert_eq!(
        merged.resilience.retry_cycles,
        s0.retry_cycles + s1.retry_cycles
    );

    // Determinism is preserved under per-shard fault overrides.
    let (sim2, merged2) = run();
    assert_eq!(sim.merged_digest(), sim2.merged_digest());
    assert_eq!(merged.resilience, merged2.resilience);
    assert_eq!(merged.total_cycles, merged2.total_cycles);
}

/// Fault configurations themselves are validated: out-of-range rates and
/// the unsupported faults-plus-recursion combination are rejected.
#[test]
fn invalid_fault_configs_are_rejected() {
    let bad_rate = smoke_cfg(Scheme::Baseline, 1, 1.5);
    assert!(bad_rate.validate().is_err(), "rate 1.5 must be rejected");

    let mut recursive = smoke_cfg(Scheme::Baseline, 1, 0.05);
    recursive.recursion = Some(string_oram::RecursionSettings {
        tracked_blocks: 1 << 9,
        positions_per_block: 4,
        max_onchip_entries: 8,
    });
    let err = recursive.validate().expect_err("faults + recursion");
    assert!(err.to_string().contains("recursive"), "got: {err}");
}
