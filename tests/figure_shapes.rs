//! Reproduction-shape tests: the paper's qualitative results must hold at
//! test scale. These are the guardrails for the figure harnesses in
//! `crates/bench` — if these pass, the full-scale figures have the right
//! shape (who wins, in which direction, with sane magnitudes).

use string_oram::{fig4_rows, table5_rows, Scheme, SimReport, Simulation, SystemConfig};
use trace_synth::{by_name, TraceGenerator, TraceRecord};

fn run(
    scheme: Scheme,
    workload: &str,
    n: usize,
    tweak: impl FnOnce(&mut SystemConfig),
) -> SimReport {
    let mut cfg = SystemConfig::test_small(scheme);
    tweak(&mut cfg);
    let spec = by_name(workload).expect("workload");
    let traces: Vec<Vec<TraceRecord>> = (0..cfg.cores)
        .map(|c| TraceGenerator::new(spec.clone(), 21, c as u32).take_records(n))
        .collect();
    let mut sim = Simulation::new(cfg, traces);
    sim.set_label(format!("{workload}/{scheme}"));
    sim.run(u64::MAX).expect("completes")
}

#[test]
fn fig10_shape_scheme_ordering() {
    // Fig. 10: CB < baseline, PB < baseline, ALL < min(CB, PB).
    let base = run(Scheme::Baseline, "black", 200, |_| {});
    let cb = run(Scheme::Cb, "black", 200, |_| {});
    let pb = run(Scheme::Pb, "black", 200, |_| {});
    let all = run(Scheme::All, "black", 200, |_| {});
    assert!(cb.total_cycles < base.total_cycles);
    assert!(pb.total_cycles < base.total_cycles);
    assert!(all.total_cycles <= cb.total_cycles);
    assert!(all.total_cycles <= pb.total_cycles);
    // Magnitudes: improvements are substantial but below 70 %.
    let saving = 1.0 - all.total_cycles as f64 / base.total_cycles as f64;
    assert!((0.05..0.7).contains(&saving), "ALL saving {saving}");
}

#[test]
fn fig5b_shape_read_paths_defeat_subtree_layout() {
    // Fig. 5(b): read-path conflict rate far above eviction conflict rate.
    let r = run(Scheme::Baseline, "libq", 200, |_| {});
    let read = r.row_class(ring_oram::OpKind::ReadPath);
    let evict = r.row_class(ring_oram::OpKind::Eviction);
    assert!(
        read.conflict_rate() > 0.4,
        "read conflict rate {:.2} too low",
        read.conflict_rate()
    );
    assert!(
        evict.conflict_rate() < 0.3,
        "evict conflict rate {:.2} too high",
        evict.conflict_rate()
    );
    assert!(read.conflict_rate() > 2.0 * evict.conflict_rate());
}

#[test]
fn fig11_shape_queueing_time_improves() {
    // Fig. 11: every optimized scheme shortens queue waits.
    let base = run(Scheme::Baseline, "face", 200, |_| {});
    let all = run(Scheme::All, "face", 200, |_| {});
    assert!(all.mean_read_queue_wait < base.mean_read_queue_wait);
    assert!(all.mean_write_queue_wait < base.mean_write_queue_wait);
}

#[test]
fn fig12_shape_pb_cuts_idle_time_and_issues_early() {
    // Fig. 12(a): bank idle proportion drops under PB.
    // Fig. 12(b): a large fraction of PRE/ACT issue early.
    let base = run(Scheme::Baseline, "ferret", 200, |_| {});
    let pb = run(Scheme::Pb, "ferret", 200, |_| {});
    assert!(pb.bank_idle_proportion < base.bank_idle_proportion);
    assert!(
        pb.pending_bank_idle_proportion < base.pending_bank_idle_proportion,
        "pending-work idle must drop: {:.3} vs {:.3}",
        pb.pending_bank_idle_proportion,
        base.pending_bank_idle_proportion
    );
    assert_eq!(base.early_precharge_fraction, 0.0);
    assert!(
        pb.early_precharge_fraction > 0.2,
        "early PRE fraction {:.2}",
        pb.early_precharge_fraction
    );
    assert!(
        pb.early_activate_fraction > 0.2,
        "early ACT fraction {:.2}",
        pb.early_activate_fraction
    );
}

#[test]
fn fig13_shape_greens_increase_with_y() {
    // Fig. 13: greens fetched per read grow monotonically with Y.
    let mut greens = Vec::new();
    for y in [0u32, 4, 8] {
        let r = run(Scheme::Cb, "black", 300, |cfg| {
            cfg.ring.y = y;
        });
        greens.push(r.protocol.greens_per_read());
    }
    assert_eq!(greens[0], 0.0);
    assert!(greens[1] > 0.0);
    assert!(greens[2] >= greens[1]);
}

#[test]
fn fig14_shape_small_stash_forces_background_evictions() {
    // Fig. 14: a too-small stash triggers background evictions under
    // aggressive CB; a large stash does not.
    let small = run(Scheme::Cb, "black", 300, |cfg| {
        cfg.ring.y = 8;
        cfg.ring.stash_capacity = 12;
    });
    let large = run(Scheme::Cb, "black", 300, |cfg| {
        cfg.ring.y = 8;
        cfg.ring.stash_capacity = 500;
    });
    assert!(
        small.protocol.background_evictions > 0,
        "tiny stash must trigger background evictions"
    );
    assert_eq!(large.protocol.background_evictions, 0);
    assert!(small.total_cycles > 0 && large.total_cycles > 0);
}

#[test]
fn fig15_shape_stash_occupancy_stays_bounded() {
    // Fig. 15: run-time stash occupancy is sampled every read and stays
    // below the provisioned bound (plus transient eviction slack).
    let r = run(Scheme::All, "freq", 400, |_| {});
    assert_eq!(r.protocol.stash_samples.len() as u64, r.oram_accesses);
    let cap = 200; // test_small stash capacity
    let max = *r.protocol.stash_samples.iter().max().unwrap();
    assert!(max < cap + 100, "stash peaked at {max}");
}

#[test]
fn fig4_and_table5_match_paper_exactly() {
    // Analytic space results are exact, not shapes.
    let fig4 = fig4_rows();
    assert_eq!(fig4.len(), 4);
    assert!((fig4[3].efficiency() - 0.3556).abs() < 1e-3);
    let t5 = table5_rows();
    let totals: Vec<u64> = t5.iter().map(|r| r.total_gib().round() as u64).collect();
    assert_eq!(totals, vec![20, 18, 16, 14, 12]);
}

#[test]
fn workload_insensitivity_of_the_optimization() {
    // The paper: variation of the improvement across applications is tiny
    // (< 0.38 %) because ORAM randomization hides workload structure. At
    // our (much shorter) scale we check a loose version: the ALL-scheme
    // saving is positive and within a 25-point band across workloads.
    let mut savings = Vec::new();
    for w in ["black", "libq", "stream"] {
        let base = run(Scheme::Baseline, w, 150, |_| {});
        let all = run(Scheme::All, w, 150, |_| {});
        savings.push(1.0 - all.total_cycles as f64 / base.total_cycles as f64);
    }
    for s in &savings {
        assert!(*s > 0.0, "saving {s}");
    }
    let spread = savings.iter().cloned().fold(f64::MIN, f64::max)
        - savings.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 0.25, "savings spread {spread}: {savings:?}");
}

#[test]
fn ring_vs_path_oram_bandwidth_ablation() {
    // Ring ORAM's raison d'etre: lower bandwidth than Path ORAM.
    use ring_oram::path_oram::{PathConfig, PathOram};
    let mut path = PathOram::new(PathConfig::test_small(), 5);
    let mut path_blocks = 0u64;
    for i in 0..200 {
        let out = path.access(ring_oram::BlockId(i % 40));
        path_blocks += out
            .plans
            .iter()
            .map(|p| (p.reads() + p.writes()) as u64)
            .sum::<u64>();
        path.recycle_outcome(out);
    }

    let ring_cfg = ring_oram::RingConfig::test_small();
    let mut ring = ring_oram::RingOram::new(ring_cfg, 5);
    let mut ring_blocks = 0u64;
    for i in 0..200 {
        let out = ring.access(ring_oram::BlockId(i % 40));
        ring_blocks += out
            .plans
            .iter()
            .map(|p| (p.reads() + p.writes()) as u64)
            .sum::<u64>();
    }
    // Overall bandwidth advantage (paper quotes 2.3-4x for tuned configs;
    // our small test config must still show a clear win).
    assert!(
        ring_blocks < path_blocks,
        "ring {ring_blocks} vs path {path_blocks}"
    );
    // Online (critical-path) advantage is much larger: Z x per level.
    let ring_online = 8; // 1 block per level, 8 levels
    let path_online = 4 * 8; // Z=4 blocks per level
    assert_eq!(path_online / ring_online, 4);
}
