//! Stage-order regression tests: pin today's `Simulation::step` semantics.
//!
//! The staged pipeline (plan → enqueue → schedule → retire → attribute)
//! must execute its stages in exactly the pre-refactor order — a swapped
//! or merged stage changes cycle counts, attribution, or wake-up timing.
//! These golden values were captured from the monolithic `step()` before
//! the pipeline split; any drift means the refactor (or a later change)
//! altered simulated behavior, not just structure.

use string_oram::{Scheme, SimReport, Simulation, SystemConfig};
use trace_synth::{by_name, TraceGenerator};

fn run(scheme: Scheme) -> SimReport {
    let cfg = SystemConfig::test_small(scheme);
    let traces = (0..cfg.cores)
        .map(|c| TraceGenerator::new(by_name("black").unwrap(), 11, c as u32).take_records(150))
        .collect();
    let mut sim = Simulation::new(cfg, traces);
    sim.run(50_000_000).expect("run completes")
}

#[test]
fn baseline_step_semantics_are_pinned() {
    let r = run(Scheme::Baseline);
    assert_eq!(r.total_cycles, 18114);
    assert_eq!(r.instructions, 64671);
    assert_eq!(r.oram_accesses, 300);
    assert_eq!(r.requests_completed, 13500);
    assert_eq!(r.cycles_by_kind.read, 6134);
    assert_eq!(r.cycles_by_kind.evict, 11175);
    assert_eq!(r.cycles_by_kind.reshuffle, 174);
    assert_eq!(r.cycles_by_kind.other, 631);
    assert_eq!(r.transactions_by_kind["read"], 300);
    assert_eq!(r.transactions_by_kind["evict"], 37);
    assert_eq!(r.transactions_by_kind["reshuffle"], 5);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn all_scheme_step_semantics_are_pinned() {
    let r = run(Scheme::All);
    assert_eq!(r.total_cycles, 13701);
    assert_eq!(r.instructions, 64671);
    assert_eq!(r.oram_accesses, 300);
    assert_eq!(r.requests_completed, 10440);
    assert_eq!(r.cycles_by_kind.read, 5004);
    assert_eq!(r.cycles_by_kind.evict, 7987);
    assert_eq!(r.cycles_by_kind.reshuffle, 44);
    assert_eq!(r.cycles_by_kind.other, 666);
    assert_eq!(r.transactions_by_kind["read"], 300);
    assert_eq!(r.transactions_by_kind["evict"], 37);
    assert_eq!(r.transactions_by_kind["reshuffle"], 2);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

/// A step is externally observable only through the cycle counter; pin
/// that `run` and manual stepping agree (no hidden work between steps).
#[test]
fn manual_stepping_matches_run() {
    let cfg = SystemConfig::test_small(Scheme::Baseline);
    let traces = (0..cfg.cores)
        .map(|c| TraceGenerator::new(by_name("black").unwrap(), 11, c as u32).take_records(40))
        .collect();
    let mut stepped = Simulation::new(cfg, traces);
    while !stepped.is_finished() {
        stepped.step();
    }
    let r_stepped = stepped.report();

    let cfg = SystemConfig::test_small(Scheme::Baseline);
    let traces = (0..cfg.cores)
        .map(|c| TraceGenerator::new(by_name("black").unwrap(), 11, c as u32).take_records(40))
        .collect();
    let mut ran = Simulation::new(cfg, traces);
    let r_run = ran.run(50_000_000).expect("completes");

    assert_eq!(r_stepped.total_cycles, r_run.total_cycles);
    assert_eq!(r_stepped.instructions, r_run.instructions);
    assert_eq!(r_stepped.requests_completed, r_run.requests_completed);
    assert_eq!(stepped.access_digest(), ran.access_digest());
}
