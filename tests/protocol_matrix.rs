//! Cross-protocol differential matrix: every protocol the pipeline knows
//! (Ring+CB, plain Ring, Path, Circuit) must run end-to-end through both
//! the unsharded [`Simulation`] and the [`ShardedSimulation`], over both
//! memory backends, with zero conformance violations — and each produces a
//! pinned, protocol-distinct golden access digest.
//!
//! The golden pins serve two purposes:
//!
//! * **Bit-invisibility of the trait refactor** — the Ring+CB digest here
//!   is the same constant `shard_differential` pins; routing the engine
//!   through `dyn ObliviousProtocol` must not move a single address.
//! * **Protocol identity** — the four digests are pairwise distinct, so a
//!   config-plumbing bug that silently runs the wrong engine (e.g. `Path`
//!   falling back to Ring) fails loudly instead of vacuously passing.
//!
//! A seeded stash-occupancy property test rides along: Path and Circuit
//! ORAM stash peaks must stay within the small constant bounds the papers
//! prove (Stefanov et al. for Path, Wang et al. for Circuit) over a long
//! random workload — the empirical check that our eviction procedures are
//! the ones the bounds are proved for.

use ring_oram::{BlockId, CircuitOram, PathConfig, PathOram, ProtocolKind, RingConfig};
use string_oram::{BackendKind, Scheme, ShardedSimulation, Simulation, SystemConfig};
use trace_synth::{by_name, TraceGenerator, TraceRecord};

/// Golden digests for the canonical run (`test_small`, ALL scheme, one
/// core, workload `black`, trace seed 11, 200 records): per protocol, the
/// unsharded digest (which the one-shard merged digest must also equal)
/// and the four-shard merged digest.
///
/// The Ring+CB row must stay in lockstep with `shard_differential`'s
/// `GOLDEN_DIGEST` — both pin the same machine. To regenerate after an
/// *intentional* protocol change, run the ignored `print_golden_digests`
/// test below with `--ignored --nocapture`.
const GOLDEN: [(ProtocolKind, u64, u64); 4] = [
    (
        ProtocolKind::RingCb,
        0x8FEF_A689_12F2_C2F5,
        0xE0A9_729E_66A7_C001,
    ),
    (
        ProtocolKind::Ring,
        0x0235_AE47_9E4F_DF7D,
        0xFD8F_219C_6FEC_C2BC,
    ),
    (
        ProtocolKind::Path,
        0x2716_F910_C160_FDEB,
        0x01D2_D800_3536_9715,
    ),
    (
        ProtocolKind::Circuit,
        0x24AA_6473_F951_AB26,
        0x9612_44D5_D52D_8400,
    ),
];

fn canonical_cfg(protocol: ProtocolKind, shards: usize, backend: BackendKind) -> SystemConfig {
    let mut cfg = SystemConfig::test_small(Scheme::All);
    cfg.protocol = protocol;
    cfg.cores = 1;
    cfg.shards = shards;
    cfg.backend = backend;
    cfg
}

fn canonical_trace() -> Vec<Vec<TraceRecord>> {
    vec![TraceGenerator::new(by_name("black").unwrap(), 11, 0).take_records(200)]
}

fn run_unsharded(protocol: ProtocolKind, backend: BackendKind) -> Simulation {
    let mut sim = Simulation::new(canonical_cfg(protocol, 1, backend), canonical_trace());
    sim.set_label(format!("matrix-{protocol}"));
    sim.run(50_000_000).expect("unsharded run completes");
    sim
}

fn run_sharded(protocol: ProtocolKind, shards: usize, backend: BackendKind) -> ShardedSimulation {
    let mut sim =
        ShardedSimulation::new(canonical_cfg(protocol, shards, backend), canonical_trace());
    sim.set_label(format!("matrix-{protocol}-{shards}"));
    sim.run(50_000_000).expect("sharded run completes");
    sim
}

/// The matrix pin: per protocol, the unsharded digest, the one-shard
/// merged digest and the four-shard merged digest all sit on their golden
/// values, and every run is conformance-clean (the `test_small` preset
/// runs the full `sim-verify` checker stack).
#[test]
fn golden_digests_are_pinned_per_protocol() {
    for (protocol, unsharded_golden, four_shard_golden) in GOLDEN {
        let sim = run_unsharded(protocol, BackendKind::CycleAccurate);
        assert_eq!(
            sim.access_digest(),
            unsharded_golden,
            "{protocol}: unsharded digest moved off the golden value: 0x{:016X}",
            sim.access_digest()
        );
        assert!(
            sim.report().violations.is_empty(),
            "{protocol}: unsharded violations: {:?}",
            sim.report().violations
        );

        let one = run_sharded(protocol, 1, BackendKind::CycleAccurate);
        assert_eq!(
            one.merged_digest(),
            unsharded_golden,
            "{protocol}: one-shard merged digest diverges from unsharded: 0x{:016X}",
            one.merged_digest()
        );

        let four = run_sharded(protocol, 4, BackendKind::CycleAccurate);
        assert_eq!(
            four.merged_digest(),
            four_shard_golden,
            "{protocol}: four-shard merged digest moved off the golden value: 0x{:016X}",
            four.merged_digest()
        );
        assert!(
            four.report().violations.is_empty(),
            "{protocol}: sharded violations: {:?}",
            four.report().violations
        );
    }
}

/// The four protocols are genuinely different machines: pairwise-distinct
/// digests, or the pins above would not catch a protocol-selection bug.
#[test]
fn protocols_produce_distinct_digests() {
    for (i, a) in GOLDEN.iter().enumerate() {
        for b in &GOLDEN[i + 1..] {
            assert_ne!(a.1, b.1, "{} and {} share an unsharded digest", a.0, b.0);
            assert_ne!(a.2, b.2, "{} and {} share a four-shard digest", a.0, b.0);
        }
    }
}

/// Backend independence holds for every protocol: the planner never sees
/// timing, so the cycle-accurate and fast functional backends observe the
/// same access sequence — unsharded and merged across four shards.
#[test]
fn backends_agree_for_every_protocol() {
    for (protocol, ..) in GOLDEN {
        let slow = run_unsharded(protocol, BackendKind::CycleAccurate);
        let fast = run_unsharded(protocol, BackendKind::FastFunctional);
        assert_eq!(
            slow.access_digest(),
            fast.access_digest(),
            "{protocol}: unsharded backends diverge"
        );
        assert_eq!(slow.oram_accesses(), fast.oram_accesses());
        assert!(fast.report().violations.is_empty(), "{protocol}");

        let slow4 = run_sharded(protocol, 4, BackendKind::CycleAccurate);
        let fast4 = run_sharded(protocol, 4, BackendKind::FastFunctional);
        assert_eq!(
            slow4.merged_digest(),
            fast4.merged_digest(),
            "{protocol}: sharded backends diverge"
        );
        assert_eq!(slow4.shard_digests(), fast4.shard_digests(), "{protocol}");
    }
}

/// The sharded residency invariant is protocol-agnostic: after a four-shard
/// run of each protocol, no block is resident in two shards and none is
/// routed to the wrong shard.
#[test]
fn cross_shard_residency_is_clean_for_every_protocol() {
    for (protocol, ..) in GOLDEN {
        let sim = run_sharded(protocol, 4, BackendKind::FastFunctional);
        let violations = sim.check_cross_shard();
        assert!(
            violations.is_empty(),
            "{protocol}: cross-shard residency violations: {violations:?}"
        );
    }
}

/// Seeded stash-occupancy property: over 100k uniformly random accesses,
/// the Path ORAM stash peak stays within the constant bound of Stefanov et
/// al. (Z=4 ⇒ overflow probability decays exponentially past a few tens of
/// blocks) and Circuit ORAM's deterministic two-pass eviction keeps its
/// stash similarly small (Wang et al. prove O(1) w.h.p.). A peak beyond
/// these margins means the eviction procedure is no longer the one the
/// bounds are proved for.
#[test]
fn path_and_circuit_stash_peaks_stay_within_paper_bounds() {
    const ACCESSES: u64 = 100_000;
    let cfg = PathConfig {
        levels: 10,
        z: 4,
        block_bytes: 64,
        tree_top_cached_levels: 0,
    };
    // Half-full tree: 2^(levels-1) leaves * Z gives capacity headroom.
    let working_set = 1u64 << (cfg.levels - 1);

    let mut path = PathOram::new(cfg, 0xA5A5);
    let mut rng_state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = |modulus: u64| {
        // SplitMix64: deterministic, seedable, no external crates.
        rng_state = rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % modulus
    };
    for _ in 0..ACCESSES {
        let out = path.access(BlockId(next(working_set)));
        path.recycle_outcome(out);
    }
    assert!(
        path.stash_peak() <= 64,
        "Path ORAM stash peak {} exceeds the paper bound margin",
        path.stash_peak()
    );

    let ring = RingConfig {
        levels: 10,
        z: 4,
        s: 1,
        a: 1,
        y: 1,
        block_bytes: 64,
        stash_capacity: 500,
        tree_top_cached_levels: 0,
    };
    let mut circuit = CircuitOram::new(ring, 0x5A5A);
    for _ in 0..ACCESSES {
        let out = circuit.access(BlockId(next(working_set)));
        circuit.recycle_outcome(out);
    }
    assert!(
        circuit.stash_peak() <= 64,
        "Circuit ORAM stash peak {} exceeds the paper bound margin",
        circuit.stash_peak()
    );
}

/// Regeneration helper (not part of the suite): prints the digest table to
/// paste into `GOLDEN` after an intentional protocol change.
#[test]
#[ignore = "regeneration helper, run with --ignored --nocapture"]
fn print_golden_digests() {
    for (protocol, ..) in GOLDEN {
        let unsharded = run_unsharded(protocol, BackendKind::CycleAccurate);
        let four = run_sharded(protocol, 4, BackendKind::CycleAccurate);
        println!(
            "    (ProtocolKind::{protocol:?}, 0x{:016X}, 0x{:016X}),",
            unsharded.access_digest(),
            four.merged_digest()
        );
    }
}
