//! Property-based tests on the core data structures and protocol
//! invariants, using proptest.

use proptest::prelude::*;

use ring_oram::layout::{NaiveLayout, SubtreeLayout, TreeLayout};
use ring_oram::{BlockId, BucketId, Level, PathId, RingConfig, RingOram, TreeGeometry};

/// Strategy over valid small Ring ORAM configurations.
fn ring_config() -> impl Strategy<Value = RingConfig> {
    (4u32..=9, 2u32..=6, 1u32..=6, 1u32..=5, 0u32..=3).prop_map(
        |(levels, z, s, a, cached_raw)| {
            let y = z.min(s) / 2;
            RingConfig {
                levels,
                z,
                s,
                a,
                y,
                block_bytes: 64,
                stash_capacity: 500,
                tree_top_cached_levels: cached_raw.min(levels - 1),
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_bucket_at_level_of_roundtrip(levels in 1u32..=20, seed in any::<u64>()) {
        let t = TreeGeometry::new(levels);
        let mut rng_state = seed;
        for _ in 0..32 {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let path = PathId(rng_state % t.leaf_count());
            for lvl in 0..levels {
                let b = t.bucket_at(path, Level(lvl));
                prop_assert_eq!(t.level_of(b), Level(lvl));
                prop_assert!(t.on_path(b, path));
            }
        }
    }

    #[test]
    fn reverse_lex_is_a_permutation(levels in 1u32..=14) {
        let t = TreeGeometry::new(levels);
        let mut seen = std::collections::HashSet::new();
        for g in 0..t.leaf_count() {
            seen.insert(t.reverse_lexicographic_path(g));
        }
        prop_assert_eq!(seen.len() as u64, t.leaf_count());
    }

    #[test]
    fn shared_depth_is_prefix_length(levels in 2u32..=16, a in any::<u64>(), b in any::<u64>()) {
        let t = TreeGeometry::new(levels);
        let pa = PathId(a % t.leaf_count());
        let pb = PathId(b % t.leaf_count());
        let d = t.shared_depth(pa, pb).0;
        // The level-d buckets agree, the level-(d+1) buckets differ.
        prop_assert_eq!(t.bucket_at(pa, Level(d)), t.bucket_at(pb, Level(d)));
        if d < t.max_level() {
            prop_assert_ne!(t.bucket_at(pa, Level(d + 1)), t.bucket_at(pb, Level(d + 1)));
        } else {
            prop_assert_eq!(pa, pb);
        }
    }

    #[test]
    fn subtree_layout_is_injective_and_bounded(cfg in ring_config(), window_pow in 10u32..=16) {
        let window = 1u64 << window_pow;
        let layout = SubtreeLayout::new(&cfg, window);
        let mut seen = std::collections::HashSet::new();
        for b in 0..cfg.bucket_count() {
            for s in 0..cfg.bucket_slots() {
                let a = layout.addr_of(BucketId(b), s);
                prop_assert!(a < layout.total_bytes());
                prop_assert!(seen.insert(a), "duplicate address {}", a);
            }
        }
    }

    #[test]
    fn subtree_slots_never_straddle_windows(cfg in ring_config(), window_pow in 10u32..=16) {
        let window = 1u64 << window_pow;
        let layout = SubtreeLayout::new(&cfg, window);
        for b in (0..cfg.bucket_count()).step_by(7) {
            let first = layout.addr_of(BucketId(b), 0);
            let last = layout.addr_of(BucketId(b), cfg.bucket_slots() - 1)
                + u64::from(cfg.block_bytes) - 1;
            prop_assert_eq!(first / window, last / window, "bucket {} straddles", b);
        }
    }

    #[test]
    fn naive_layout_is_dense(cfg in ring_config()) {
        let layout = NaiveLayout::new(&cfg);
        prop_assert_eq!(layout.total_bytes(), cfg.bucket_count() * cfg.bucket_bytes());
    }

    #[test]
    fn protocol_invariants_hold_for_random_access_sequences(
        cfg in ring_config(),
        accesses in proptest::collection::vec(0u64..64, 1..120),
        seed in any::<u64>(),
        load in 0u32..=10,
    ) {
        let mut oram = RingOram::with_load_factor(cfg, seed, f64::from(load) / 10.0);
        for a in &accesses {
            let outcome = oram.access(BlockId(*a));
            // Read-path plans touch exactly one block per off-chip level.
            let read_plan = outcome
                .plans
                .iter()
                .find(|p| p.kind == ring_oram::OpKind::ReadPath)
                .expect("every access has a read path");
            let off_chip =
                oram.config().levels - oram.config().tree_top_cached_levels;
            prop_assert_eq!(read_plan.reads(), off_chip as usize);
            prop_assert_eq!(read_plan.writes(), 0);
        }
        oram.check_invariants();
        // Conservation: every program access was sourced somewhere.
        let s = oram.stats();
        prop_assert_eq!(
            s.new_blocks + s.targets_from_tree + s.targets_from_stash
                + s.targets_from_treetop,
            s.read_paths
        );
    }

    #[test]
    fn eviction_interval_is_exact(
        cfg in ring_config(),
        n in 10usize..100,
    ) {
        let a = cfg.a;
        let mut oram = RingOram::new(cfg, 7);
        let mut reads = 0u64;
        let mut evictions = 0u64;
        for i in 0..n {
            let outcome = oram.access(BlockId(i as u64));
            reads += 1;
            for p in &outcome.plans {
                if p.kind == ring_oram::OpKind::Eviction {
                    evictions += 1;
                }
            }
            // Background evictions also consume read-path slots, so count
            // dummy reads too.
            reads += outcome
                .plans
                .iter()
                .filter(|p| p.kind == ring_oram::OpKind::DummyReadPath)
                .count() as u64;
        }
        prop_assert_eq!(evictions, reads / u64::from(a), "A = {}", a);
    }

    #[test]
    fn data_integrity_under_random_interleavings(
        cfg in ring_config(),
        ops in proptest::collection::vec((0u64..24, any::<bool>(), any::<u8>()), 1..150),
        seed in any::<u64>(),
        encrypt in any::<bool>(),
    ) {
        // A model-based test: a plain HashMap is the reference; the ORAM
        // must agree with it after any interleaving of reads and writes,
        // with or without encryption, across evictions and reshuffles.
        let block_bytes = cfg.block_bytes as usize;
        let mut oram = RingOram::new(cfg, seed);
        if encrypt {
            oram.enable_encryption(seed ^ 0xABCD);
        }
        let mut model: std::collections::HashMap<u64, u8> =
            std::collections::HashMap::new();
        for (block, is_write, tag) in ops {
            if is_write {
                let data = vec![tag; block_bytes];
                let _ = oram.write_block(BlockId(block), &data);
                model.insert(block, tag);
            } else {
                let (_, data) = oram.read_block(BlockId(block));
                match model.get(&block) {
                    Some(&tag) => {
                        let d = data.expect("written block must have data");
                        prop_assert_eq!(d, vec![tag; block_bytes]);
                    }
                    None => prop_assert_eq!(data, None),
                }
            }
        }
        // Final sweep: every model entry is still intact.
        let keys: Vec<u64> = model.keys().copied().collect();
        for block in keys {
            let (_, data) = oram.read_block(BlockId(block));
            prop_assert_eq!(data, Some(vec![model[&block]; block_bytes]));
        }
        oram.check_invariants();
    }

    #[test]
    fn bucket_slot_reads_are_unique_between_shuffles(
        z in 1u32..=8,
        s in 1u32..=8,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let y = z.min(s) / 2;
        let cfg = RingConfig {
            levels: 4, z, s, a: 2, y,
            block_bytes: 64,
            stash_capacity: 100,
            tree_top_cached_levels: 0,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let blocks: Vec<BlockId> = (0..u64::from(z / 2)).map(BlockId).collect();
        let mut bucket = ring_oram::bucket::Bucket::with_blocks(&cfg, &blocks, &mut rng);
        let mut seen = std::collections::HashSet::new();
        while !bucket.needs_reshuffle(&cfg) {
            let (slot, _, _) = bucket.serve_read(&cfg, None, &mut rng);
            prop_assert!(seen.insert(slot), "slot {} read twice", slot);
        }
        prop_assert!(seen.len() as u32 <= cfg.s);
    }
}
