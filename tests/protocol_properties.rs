//! Property-style tests on the core data structures and protocol
//! invariants, driven by the in-repo deterministic PRNG (`oram-rng`) so the
//! suite needs no external crates and produces identical cases offline.

use oram_rng::{Rng, StdRng};
use ring_oram::layout::{NaiveLayout, SubtreeLayout, TreeLayout};
use ring_oram::{BlockId, BucketId, Level, PathId, RingConfig, RingOram, TreeGeometry};

/// Number of random cases per property (mirrors the old proptest setting).
const CASES: u64 = 64;

/// Draws a valid small Ring ORAM configuration.
fn ring_config(rng: &mut StdRng) -> RingConfig {
    let levels = rng.gen_range(4u32..10);
    let z = rng.gen_range(2u32..7);
    let s = rng.gen_range(1u32..7);
    let a = rng.gen_range(1u32..6);
    let cached_raw = rng.gen_range(0u32..4);
    let y = z.min(s) / 2;
    RingConfig {
        levels,
        z,
        s,
        a,
        y,
        block_bytes: 64,
        stash_capacity: 500,
        tree_top_cached_levels: cached_raw.min(levels - 1),
    }
}

#[test]
fn tree_bucket_at_level_of_roundtrip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let levels = rng.gen_range(1u32..21);
        let t = TreeGeometry::new(levels);
        for _ in 0..32 {
            let path = PathId(rng.gen_range(0..t.leaf_count()));
            for lvl in 0..levels {
                let b = t.bucket_at(path, Level(lvl));
                assert_eq!(t.level_of(b), Level(lvl));
                assert!(t.on_path(b, path));
            }
        }
    }
}

#[test]
fn reverse_lex_is_a_permutation() {
    for levels in 1u32..=14 {
        let t = TreeGeometry::new(levels);
        let mut seen = std::collections::HashSet::new();
        for g in 0..t.leaf_count() {
            seen.insert(t.reverse_lexicographic_path(g));
        }
        assert_eq!(seen.len() as u64, t.leaf_count());
    }
}

#[test]
fn shared_depth_is_prefix_length() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let levels = rng.gen_range(2u32..17);
        let t = TreeGeometry::new(levels);
        let pa = PathId(rng.gen_range(0..t.leaf_count()));
        let pb = PathId(rng.gen_range(0..t.leaf_count()));
        let d = t.shared_depth(pa, pb).0;
        // The level-d buckets agree, the level-(d+1) buckets differ.
        assert_eq!(t.bucket_at(pa, Level(d)), t.bucket_at(pb, Level(d)));
        if d < t.max_level() {
            assert_ne!(t.bucket_at(pa, Level(d + 1)), t.bucket_at(pb, Level(d + 1)));
        } else {
            assert_eq!(pa, pb);
        }
    }
}

#[test]
fn subtree_layout_is_injective_and_bounded() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let cfg = ring_config(&mut rng);
        let window = 1u64 << rng.gen_range(10u32..17);
        let layout = SubtreeLayout::new(&cfg, window);
        let mut seen = std::collections::HashSet::new();
        for b in 0..cfg.bucket_count() {
            for s in 0..cfg.bucket_slots() {
                let a = layout.addr_of(BucketId(b), s);
                assert!(a < layout.total_bytes());
                assert!(seen.insert(a), "case {case}: duplicate address {a}");
            }
        }
    }
}

#[test]
fn subtree_slots_never_straddle_windows() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let cfg = ring_config(&mut rng);
        let window = 1u64 << rng.gen_range(10u32..17);
        let layout = SubtreeLayout::new(&cfg, window);
        for b in (0..cfg.bucket_count()).step_by(7) {
            let first = layout.addr_of(BucketId(b), 0);
            let last = layout.addr_of(BucketId(b), cfg.bucket_slots() - 1)
                + u64::from(cfg.block_bytes)
                - 1;
            assert_eq!(first / window, last / window, "bucket {b} straddles");
        }
    }
}

#[test]
fn naive_layout_is_dense() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let cfg = ring_config(&mut rng);
        let layout = NaiveLayout::new(&cfg);
        assert_eq!(
            layout.total_bytes(),
            cfg.bucket_count() * cfg.bucket_bytes()
        );
    }
}

#[test]
fn protocol_invariants_hold_for_random_access_sequences() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let cfg = ring_config(&mut rng);
        let n = rng.gen_range(1usize..120);
        let seed = rng.gen::<u64>();
        let load = f64::from(rng.gen_range(0u32..11)) / 10.0;
        let mut oram = RingOram::with_load_factor(cfg, seed, load);
        for _ in 0..n {
            let outcome = oram.access(BlockId(rng.gen_range(0u64..64)));
            // Read-path plans touch exactly one block per off-chip level.
            let read_plan = outcome
                .plans
                .iter()
                .find(|p| p.kind == ring_oram::OpKind::ReadPath)
                .expect("every access has a read path");
            let off_chip = oram.config().levels - oram.config().tree_top_cached_levels;
            assert_eq!(read_plan.reads(), off_chip as usize);
            assert_eq!(read_plan.writes(), 0);
        }
        oram.check_invariants();
        // Conservation: every program access was sourced somewhere.
        let s = oram.stats();
        assert_eq!(
            s.new_blocks + s.targets_from_tree + s.targets_from_stash + s.targets_from_treetop,
            s.read_paths
        );
    }
}

#[test]
fn eviction_interval_is_exact() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let cfg = ring_config(&mut rng);
        let n = rng.gen_range(10usize..100);
        let a = cfg.a;
        let mut oram = RingOram::new(cfg, 7);
        let mut reads = 0u64;
        let mut evictions = 0u64;
        for i in 0..n {
            let outcome = oram.access(BlockId(i as u64));
            reads += 1;
            for p in &outcome.plans {
                if p.kind == ring_oram::OpKind::Eviction {
                    evictions += 1;
                }
            }
            // Background evictions also consume read-path slots, so count
            // dummy reads too.
            reads += outcome
                .plans
                .iter()
                .filter(|p| p.kind == ring_oram::OpKind::DummyReadPath)
                .count() as u64;
        }
        assert_eq!(evictions, reads / u64::from(a), "case {case}: A = {a}");
    }
}

#[test]
fn data_integrity_under_random_interleavings() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let cfg = ring_config(&mut rng);
        let n_ops = rng.gen_range(1usize..150);
        let seed = rng.gen::<u64>();
        let encrypt = rng.gen_bool(0.5);
        // A model-based test: a plain HashMap is the reference; the ORAM
        // must agree with it after any interleaving of reads and writes,
        // with or without encryption, across evictions and reshuffles.
        let block_bytes = cfg.block_bytes as usize;
        let mut oram = RingOram::new(cfg, seed);
        if encrypt {
            oram.enable_encryption(seed ^ 0xABCD);
        }
        let mut model: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
        for _ in 0..n_ops {
            let block = rng.gen_range(0u64..24);
            let is_write = rng.gen_bool(0.5);
            let tag = rng.gen::<u8>();
            if is_write {
                let data = vec![tag; block_bytes];
                let _ = oram.write_block(BlockId(block), &data);
                model.insert(block, tag);
            } else {
                let (_, data) = oram.read_block(BlockId(block));
                match model.get(&block) {
                    Some(&tag) => {
                        let d = data.expect("written block must have data");
                        assert_eq!(d, vec![tag; block_bytes]);
                    }
                    None => assert_eq!(data, None),
                }
            }
        }
        // Final sweep: every model entry is still intact.
        let keys: Vec<u64> = model.keys().copied().collect();
        for block in keys {
            let (_, data) = oram.read_block(BlockId(block));
            assert_eq!(data, Some(vec![model[&block]; block_bytes]));
        }
        oram.check_invariants();
    }
}

#[test]
fn bucket_slot_reads_are_unique_between_shuffles() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let z = rng.gen_range(1u32..9);
        let s = rng.gen_range(1u32..9);
        let y = z.min(s) / 2;
        let cfg = RingConfig {
            levels: 4,
            z,
            s,
            a: 2,
            y,
            block_bytes: 64,
            stash_capacity: 100,
            tree_top_cached_levels: 0,
        };
        let blocks: Vec<BlockId> = (0..u64::from(z / 2)).map(BlockId).collect();
        let mut bucket = ring_oram::bucket::Bucket::with_blocks(&cfg, &blocks, &mut rng);
        let mut seen = std::collections::HashSet::new();
        while !bucket.needs_reshuffle(&cfg) {
            let (slot, _, _) = bucket.serve_read(&cfg, None, &mut rng);
            assert!(seen.insert(slot), "case {case}: slot {slot} read twice");
        }
        assert!(seen.len() as u32 <= cfg.s);
    }
}
