//! Scheduler-policy differential matrix: every command-scheduling policy
//! in `mem-sched`'s policy lab must run end-to-end through the pipeline
//! with zero conformance violations, and — except for the explicitly
//! insecure unconstrained ablation, which is not in this matrix — preserve
//! the **observable transaction-ordered data-command sequence**.
//!
//! Three layers of evidence:
//!
//! * **Golden pins** — the ORAM access sequence is planned above the
//!   memory layer, so every policy produces the same unsharded and
//!   four-shard access digests the protocol and shard differentials pin.
//!   A policy that moved them would be perturbing the protocol, not the
//!   command schedule.
//! * **Canonical data-command digests** — the [`sim_verify::PolicyAuditor`]
//!   riding on each run's command stream folds the per-transaction sorted
//!   RD/WR multiset into one digest. All policies must agree with the
//!   baseline, across both memory backends: intra-transaction reordering
//!   (read-over-write's whole point) is invisible, cross-transaction
//!   leakage is not.
//! * **Controller-direct pairwise differential** — a synthetic multi-
//!   transaction workload driven straight through `MemoryController`, with
//!   the grouped-and-sorted data-command sequence compared pairwise
//!   against the FR-FCFS baseline, plus repeat-run determinism.

use dram_sim::geometry::DramGeometry;
use dram_sim::timing::TimingParams;
use dram_sim::{AddressMapping, DramModule};
use mem_sched::{MemoryController, RequestSpec, SchedulerPolicy, TxnId};
use sim_verify::oracle::{data_commands, grouped_by_txn};
use sim_verify::PolicyAuditor;
use string_oram::{BackendKind, Scheme, ShardedSimulation, Simulation, SystemConfig};
use trace_synth::{by_name, TraceGenerator, TraceRecord};

/// The canonical run's access digests (`test_small`, ALL scheme, one core,
/// workload `black`, trace seed 11, 200 records) — the same constants
/// `protocol_matrix` and `shard_differential` pin for Ring+CB.
const UNSHARDED_GOLDEN: u64 = 0x8FEF_A689_12F2_C2F5;
const FOUR_SHARD_GOLDEN: u64 = 0xE0A9_729E_66A7_C001;

/// Every order-preserving policy in the lab, baseline first.
const POLICIES: [SchedulerPolicy; 5] = [
    SchedulerPolicy::TransactionBased,
    SchedulerPolicy::ProactiveBank { lookahead: 1 },
    SchedulerPolicy::ReadOverWrite { drain_bound: 8 },
    SchedulerPolicy::SpeculativeWindow { window: 4 },
    SchedulerPolicy::FixedCadence { period: 2 },
];

fn canonical_cfg(policy: SchedulerPolicy, shards: usize, backend: BackendKind) -> SystemConfig {
    let mut cfg = SystemConfig::test_small(Scheme::All);
    cfg.sched_policy = policy;
    cfg.cores = 1;
    cfg.shards = shards;
    cfg.backend = backend;
    cfg
}

fn canonical_trace() -> Vec<Vec<TraceRecord>> {
    vec![TraceGenerator::new(by_name("black").unwrap(), 11, 0).take_records(200)]
}

fn run_unsharded(policy: SchedulerPolicy, backend: BackendKind) -> Simulation {
    let mut sim = Simulation::new(canonical_cfg(policy, 1, backend), canonical_trace());
    sim.set_label(format!("policy-{}", policy.name()));
    sim.run(50_000_000).expect("unsharded run completes");
    sim
}

/// Unsharded pins and the system-level equivalence proof: every policy
/// reproduces the golden access digest with zero violations, reports its
/// own name, and — across both backends — the policy auditor's canonical
/// data-command digest matches the transaction-based baseline's.
#[test]
fn every_policy_holds_the_golden_digest_and_canonical_sequence() {
    let mut canonical: Option<u64> = None;
    for policy in POLICIES {
        for backend in [BackendKind::CycleAccurate, BackendKind::FastFunctional] {
            let sim = run_unsharded(policy, backend);
            let report = sim.report();
            assert_eq!(
                sim.access_digest(),
                UNSHARDED_GOLDEN,
                "{}/{backend:?}: access digest moved off the golden value: 0x{:016X}",
                policy.name(),
                sim.access_digest()
            );
            assert!(
                report.violations.is_empty(),
                "{}/{backend:?}: conformance violations: {:?}",
                policy.name(),
                report.violations
            );
            assert_eq!(report.policy_name, policy.name(), "{backend:?}");

            let auditor = sim.policy_auditor().expect("test_small enables checking");
            assert_eq!(auditor.policy_name(), policy.name());
            assert!(
                auditor.is_clean(),
                "{}: auditor found leakage",
                policy.name()
            );
            assert!(auditor.data_commands() > 0);
            let digest = auditor.canonical_digest();
            match canonical {
                None => canonical = Some(digest),
                Some(expect) => assert_eq!(
                    digest,
                    expect,
                    "{}/{backend:?}: canonical data-command digest diverges from \
                     the baseline — the policy changed the observable sequence",
                    policy.name()
                ),
            }
        }
    }
}

/// Four-shard pins: the sharded engine agrees with the golden merged
/// digest under every policy, conformance-clean.
#[test]
fn every_policy_holds_the_four_shard_golden_digest() {
    for policy in POLICIES {
        let mut sim = ShardedSimulation::new(
            canonical_cfg(policy, 4, BackendKind::CycleAccurate),
            canonical_trace(),
        );
        sim.set_label(format!("policy-{}-4", policy.name()));
        sim.run(50_000_000).expect("sharded run completes");
        assert_eq!(
            sim.merged_digest(),
            FOUR_SHARD_GOLDEN,
            "{}: four-shard merged digest moved off the golden value: 0x{:016X}",
            policy.name(),
            sim.merged_digest()
        );
        let report = sim.report();
        assert!(
            report.violations.is_empty(),
            "{}: sharded violations: {:?}",
            policy.name(),
            report.violations
        );
        assert_eq!(report.policy_name, policy.name());
    }
}

/// The PB-style policies actually use their lookahead on the canonical
/// run (early PRE/ACT fractions are positive), the baseline never does,
/// and fixed-cadence actually withholds issue slots — so the matrix above
/// is comparing genuinely different schedulers, not five spellings of one.
#[test]
fn policies_are_behaviorally_distinct_on_the_canonical_run() {
    for policy in POLICIES {
        let report = run_unsharded(policy, BackendKind::CycleAccurate).report();
        let early = report.early_precharge_fraction + report.early_activate_fraction;
        match policy {
            SchedulerPolicy::ProactiveBank { .. } | SchedulerPolicy::SpeculativeWindow { .. } => {
                assert!(early > 0.0, "{} never issued early prep", policy.name());
            }
            _ => assert_eq!(early, 0.0, "{} issued early prep", policy.name()),
        }
        match policy {
            SchedulerPolicy::FixedCadence { .. } => assert!(
                report.withheld_issue_slots > 0,
                "fixed-cadence never withheld a slot"
            ),
            _ => assert_eq!(report.withheld_issue_slots, 0, "{}", policy.name()),
        }
        if matches!(policy, SchedulerPolicy::ReadOverWrite { .. }) {
            // The ORAM workload interleaves reads and writes heavily, so
            // read priority must defer at least one write.
            assert!(report.deferred_writes > 0, "read-over-write never deferred");
        }
    }
}

/// A deterministic synthetic workload: `txns` transactions of mixed
/// reads/writes over both channels, with intra-transaction row sharing
/// (hit opportunities) and cross-transaction bank conflicts (what the
/// proactive pass exploits).
fn synthetic_requests(txns: u64) -> Vec<RequestSpec> {
    let geometry = DramGeometry::test_small();
    let mapping = AddressMapping::hpca_default(&geometry);
    let mut state = 0x5EED_CAFE_F00D_0001u64;
    let mut next = |m: u64| {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % m
    };
    let mut reqs = Vec::new();
    for t in 0..txns {
        let shared_row = next(64);
        for i in 0..4 {
            let loc = dram_sim::DramLocation {
                channel: (next(2)) as u32,
                rank: 0,
                bank: (next(4)) as u32,
                row: if i < 2 { shared_row } else { next(64) },
                column: next(8) as u32,
            };
            reqs.push(RequestSpec {
                addr: mapping.encode(&loc),
                is_write: next(3) == 0,
                txn: TxnId(t),
            });
        }
    }
    reqs
}

/// Drives the synthetic workload through a controller under `policy` and
/// returns the recorded command events.
fn drive(policy: SchedulerPolicy) -> Vec<mem_sched::CommandEvent> {
    let geometry = DramGeometry::test_small();
    let mapping = AddressMapping::hpca_default(&geometry);
    let dram = DramModule::new(geometry, TimingParams::test_fast());
    let mut ctrl = MemoryController::new(dram, mapping, policy, 64);
    ctrl.enable_command_trace();
    for req in synthetic_requests(12) {
        ctrl.try_enqueue(req, 0).unwrap();
    }
    let mut cycle = 0;
    while ctrl.pending() > 0 {
        ctrl.tick(cycle);
        ctrl.drain_completed();
        cycle += 1;
        assert!(cycle < 200_000, "{}: scheduler wedged", policy.name());
    }
    ctrl.take_command_events()
}

/// Controller-direct pairwise differential: under every policy the
/// grouped-by-transaction, operation-sorted data-command sequence is
/// literally identical to the FR-FCFS baseline's, and the policy auditor
/// agrees (clean, equal canonical digests).
#[test]
fn controller_level_data_sequences_match_the_baseline_pairwise() {
    let canonical_of = |events: &[mem_sched::CommandEvent]| {
        grouped_by_txn(&data_commands(events))
            .into_iter()
            .map(|(txn, mut group)| {
                group.sort_unstable_by_key(|c| c.operation_key());
                (
                    txn,
                    group
                        .into_iter()
                        .map(|c| c.operation_key())
                        .collect::<Vec<_>>(),
                )
            })
            .collect::<Vec<_>>()
    };

    let baseline_events = drive(POLICIES[0]);
    let baseline = canonical_of(&baseline_events);
    assert!(!baseline.is_empty());
    for policy in &POLICIES[1..] {
        let events = drive(*policy);
        let mut auditor = PolicyAuditor::new(policy.name());
        for ev in &events {
            auditor.observe(ev);
        }
        assert!(
            auditor.is_clean(),
            "{}: cross-transaction leakage",
            policy.name()
        );
        let candidate = canonical_of(&events);
        assert_eq!(
            candidate,
            baseline,
            "{}: transaction-ordered data-command sequence diverges from fr-fcfs",
            policy.name()
        );
    }
}

/// Repeat runs are bit-deterministic for every policy: same events, same
/// canonical digest, and at the system level the same cycle count.
#[test]
fn repeat_runs_are_deterministic() {
    for policy in POLICIES {
        let a = drive(policy);
        let b = drive(policy);
        assert_eq!(
            a,
            b,
            "{}: controller events differ across runs",
            policy.name()
        );
    }
    for policy in [
        SchedulerPolicy::ReadOverWrite { drain_bound: 8 },
        SchedulerPolicy::FixedCadence { period: 2 },
    ] {
        let x = run_unsharded(policy, BackendKind::CycleAccurate);
        let y = run_unsharded(policy, BackendKind::CycleAccurate);
        assert_eq!(x.cycles(), y.cycles(), "{}", policy.name());
        assert_eq!(
            x.policy_auditor().unwrap().canonical_digest(),
            y.policy_auditor().unwrap().canonical_digest()
        );
    }
}
