//! Contract tests between the two schedulers: the Proactive Bank scheduler
//! must preserve everything the security argument relies on, while only
//! improving timing.
//!
//! All randomness comes from the in-repo `oram-rng` crate with fixed seeds,
//! so the suite is deterministic and runs fully offline.

use std::collections::VecDeque;

use dram_sim::geometry::DramGeometry;
use dram_sim::timing::TimingParams;
use dram_sim::{AddressMapping, DramLocation, DramModule, PhysAddr};

use mem_sched::{
    CommandEvent, Completed, MemoryController, RequestSpec, RowClass, SchedulerPolicy, TxnId,
};
use oram_rng::{Rng, StdRng};
use sim_verify::{check_txn_order, data_commands, first_divergence, grouped_by_txn};

/// A compact request description drawn from a seeded generator.
#[derive(Debug, Clone)]
struct GenReq {
    txn: u64,
    channel: u32,
    bank: u32,
    row: u64,
    column: u32,
    is_write: bool,
}

/// Draws 1..40 requests over 2 channels x 4 banks x 8 rows, sorted by
/// transaction id (transactions must be issued in id order; the sort is
/// stable, so within-transaction order is preserved).
fn gen_reqs(seed: u64) -> Vec<GenReq> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(1..40usize);
    let mut v: Vec<GenReq> = (0..n)
        .map(|_| GenReq {
            txn: rng.gen_range(0..4u64),
            channel: rng.gen_range(0..2u32),
            bank: rng.gen_range(0..4u32),
            row: rng.gen_range(0..8u64),
            column: rng.gen_range(0..8u32),
            is_write: rng.gen_bool(0.5),
        })
        .collect();
    v.sort_by_key(|r| r.txn);
    v
}

/// A denser workload (many transactions, whole bank space) for the
/// multi-bank differential tests.
fn gen_multibank(seed: u64, n: usize, txns: u64) -> Vec<GenReq> {
    let geometry = DramGeometry::test_small();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<GenReq> = (0..n)
        .map(|_| GenReq {
            txn: rng.gen_range(0..txns),
            channel: rng.gen_range(0..geometry.channels),
            bank: rng.gen_range(0..geometry.banks_per_rank),
            row: rng.gen_range(0..geometry.rows_per_bank),
            column: rng.gen_range(0..geometry.columns_per_row),
            is_write: rng.gen_bool(0.4),
        })
        .collect();
    v.sort_by_key(|r| r.txn);
    v
}

fn spec_of(mapping: &AddressMapping, r: &GenReq) -> RequestSpec {
    let addr: PhysAddr = mapping.encode(&DramLocation {
        channel: r.channel,
        rank: 0,
        bank: r.bank,
        row: r.row,
        column: r.column,
    });
    RequestSpec {
        addr,
        is_write: r.is_write,
        txn: TxnId(r.txn),
    }
}

/// Runs the controller to completion. Requests are fed in transaction
/// order with a retry loop, so a `queue_capacity` smaller than the request
/// count exercises the queue-full path the integrated system also takes.
fn run_traced(
    policy: SchedulerPolicy,
    reqs: &[GenReq],
    timing: TimingParams,
    queue_capacity: usize,
) -> (Vec<Completed>, Vec<CommandEvent>) {
    let geometry = DramGeometry::test_small();
    let mapping = AddressMapping::hpca_default(&geometry);
    let dram = DramModule::new(geometry, timing);
    let mut ctrl = MemoryController::new(dram, mapping.clone(), policy, queue_capacity);
    ctrl.enable_command_trace();
    let mut pending: VecDeque<RequestSpec> = reqs.iter().map(|r| spec_of(&mapping, r)).collect();
    let mut out = Vec::new();
    let mut cycle = 0;
    while !pending.is_empty() || ctrl.pending() > 0 {
        while let Some(&spec) = pending.front() {
            if ctrl.try_enqueue(spec, cycle).is_ok() {
                pending.pop_front();
            } else {
                break;
            }
        }
        ctrl.tick(cycle);
        out.extend(ctrl.drain_completed());
        cycle += 1;
        assert!(cycle < 1_000_000, "scheduler wedged");
    }
    (out, ctrl.take_command_events())
}

fn run(policy: SchedulerPolicy, reqs: &[GenReq]) -> Vec<Completed> {
    run_traced(policy, reqs, TimingParams::test_fast(), 64).0
}

/// Data (RD/WR) issue times must be monotone in transaction id: the latest
/// issue of txn t precedes the earliest of txn t+1.
fn assert_txn_monotone(done: &[Completed], label: &str) {
    let mut max_issue_by_txn = std::collections::BTreeMap::new();
    let mut min_issue_by_txn = std::collections::BTreeMap::new();
    for d in done {
        let e = max_issue_by_txn.entry(d.txn).or_insert(d.issue_at);
        *e = (*e).max(d.issue_at);
        let e = min_issue_by_txn.entry(d.txn).or_insert(d.issue_at);
        *e = (*e).min(d.issue_at);
    }
    let txns: Vec<TxnId> = max_issue_by_txn.keys().copied().collect();
    for w in txns.windows(2) {
        assert!(
            max_issue_by_txn[&w[0]] < min_issue_by_txn[&w[1]],
            "{label}: txn {:?} data overlaps txn {:?}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn pb_preserves_data_command_transaction_order() {
    for seed in 0..48u64 {
        let reqs = gen_reqs(seed);
        for policy in [
            SchedulerPolicy::TransactionBased,
            SchedulerPolicy::proactive(),
        ] {
            let done = run(policy, &reqs);
            assert_eq!(done.len(), reqs.len());
            assert_txn_monotone(&done, &format!("seed {seed} {policy:?}"));
        }
    }
}

#[test]
fn pb_never_slower_and_same_row_classes() {
    for seed in 0..48u64 {
        let reqs = gen_reqs(seed);
        let base = run(SchedulerPolicy::TransactionBased, &reqs);
        let pb = run(SchedulerPolicy::proactive(), &reqs);

        // Identical request population.
        assert_eq!(base.len(), pb.len());

        // Row-class multiset must be identical per transaction: PB shifts
        // PRE/ACT timing but never changes what each request needed.
        let classes = |v: &[Completed]| {
            let mut m: std::collections::BTreeMap<TxnId, (u64, u64, u64)> =
                std::collections::BTreeMap::new();
            for d in v {
                let e = m.entry(d.txn).or_default();
                match d.class {
                    RowClass::Hit => e.0 += 1,
                    RowClass::Miss => e.1 += 1,
                    RowClass::Conflict => e.2 += 1,
                }
            }
            m
        };
        assert_eq!(classes(&base), classes(&pb), "seed {seed}");

        // PB finishes no later than the baseline, modulo a small bounded
        // slack: an early ACT can delay a later same-rank ACT through
        // tRRD/tFAW even though it never steals an issue slot (the current
        // transaction always has priority). The paper claims an *average*
        // win, which the system-level tests assert; here we bound the
        // worst case per run by one tFAW window.
        let finish = |v: &[Completed]| v.iter().map(|d| d.data_done_at).max().unwrap_or(0);
        let slack = TimingParams::test_fast().t_faw;
        assert!(
            finish(&pb) <= finish(&base) + slack,
            "seed {seed}: PB {} vs baseline {} (+{} slack)",
            finish(&pb),
            finish(&base),
            slack
        );
    }
}

#[test]
fn command_traces_replay_cleanly() {
    // Record every command the scheduler issues, then replay the trace
    // against a FRESH DRAM module: every command must be legal at its
    // recorded cycle. This pins the contract that the scheduler never
    // issues anything the JEDEC constraints forbid, and that the trace
    // is complete. The shadow checker — a second, from-scratch timing
    // implementation — must agree with the module on every trace.
    for seed in 0..32u64 {
        let reqs = gen_reqs(seed);
        for policy in [
            SchedulerPolicy::TransactionBased,
            SchedulerPolicy::proactive(),
        ] {
            let (done, trace) = run_traced(policy, &reqs, TimingParams::test_fast(), 64);
            assert_eq!(done.len(), reqs.len());
            assert!(
                trace.len() >= reqs.len(),
                "every request needs >= 1 command"
            );

            let geometry = DramGeometry::test_small();
            let mut replay = DramModule::new(geometry.clone(), TimingParams::test_fast());
            for ev in &trace {
                replay.tick(ev.cycle);
                replay
                    .issue(ev.cmd, ev.cycle)
                    .unwrap_or_else(|e| panic!("replay rejected {} at {}: {e}", ev.cmd, ev.cycle));
            }
            assert_eq!(replay.stats().total_commands(), trace.len() as u64);

            let mut shadow =
                sim_verify::ShadowTimingChecker::new(geometry, TimingParams::test_fast());
            for ev in &trace {
                shadow.observe(ev.cycle, ev.cmd);
            }
            assert!(
                shadow.is_clean(),
                "seed {seed} {policy:?}: shadow checker flagged {:?}",
                shadow.violations().first()
            );
        }
    }
}

#[test]
fn all_requests_complete_exactly_once() {
    for seed in 0..48u64 {
        let reqs = gen_reqs(seed);
        let done = run(SchedulerPolicy::proactive(), &reqs);
        let mut ids: Vec<u64> = done.iter().map(|d| d.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), reqs.len());
        for d in &done {
            assert!(d.first_cmd_at >= d.arrival);
            assert!(d.issue_at >= d.first_cmd_at);
            assert!(d.data_done_at > d.issue_at);
        }
    }
}

/// The PB security contract on the observable bus trace, per transaction:
/// both schedulers issue exactly the same data commands for each
/// transaction, and all of a transaction's data traffic completes before
/// the next transaction's begins. Within a transaction the *order* may
/// legitimately differ (an early ACT turns a would-be conflict into a row
/// hit, which FR-FCFS then prefers), so the comparison is per-transaction
/// multiset equality plus global transaction monotonicity — exactly what
/// an attacker-visible indistinguishability argument needs.
fn assert_pb_matches_baseline(reqs: &[GenReq], timing: TimingParams, queue: usize, label: &str) {
    let (base_done, base_trace) = run_traced(
        SchedulerPolicy::TransactionBased,
        reqs,
        timing.clone(),
        queue,
    );
    let (pb_done, pb_trace) = run_traced(SchedulerPolicy::proactive(), reqs, timing, queue);
    assert_eq!(
        base_done.len(),
        reqs.len(),
        "{label}: baseline lost requests"
    );
    assert_eq!(pb_done.len(), reqs.len(), "{label}: PB lost requests");

    for (name, trace) in [("baseline", &base_trace), ("pb", &pb_trace)] {
        let violations = check_txn_order(trace);
        assert!(violations.is_empty(), "{label} {name}: {}", violations[0]);
    }

    let base_groups = grouped_by_txn(&data_commands(&base_trace));
    let pb_groups = grouped_by_txn(&data_commands(&pb_trace));
    assert_eq!(
        base_groups.len(),
        pb_groups.len(),
        "{label}: transaction count differs"
    );
    for ((bt, mut bg), (pt, mut pg)) in base_groups.into_iter().zip(pb_groups) {
        assert_eq!(bt, pt, "{label}: transaction ids differ");
        bg.sort_by_key(sim_verify::DataCmd::operation_key);
        pg.sort_by_key(sim_verify::DataCmd::operation_key);
        if let Some((i, b, p)) = first_divergence(&bg, &pg) {
            panic!(
                "{label}: txn {} data multiset diverges at {i}: baseline {b:?} vs pb {p:?}",
                bt.0
            );
        }
    }
}

#[test]
fn pb_data_sequence_matches_baseline_on_multibank_traces() {
    for seed in [3u64, 17, 29] {
        let reqs = gen_multibank(seed, 120, 12);
        assert_pb_matches_baseline(
            &reqs,
            TimingParams::test_fast(),
            64,
            &format!("multibank seed {seed}"),
        );
    }
}

#[test]
fn pb_data_sequence_matches_baseline_under_queue_pressure() {
    // Queue capacity far below the request count: enqueue stalls and
    // resumes as transactions drain, which is how the integrated system
    // feeds the controller. The contract must hold across those stalls.
    for seed in [5u64, 23, 41] {
        let reqs = gen_multibank(seed, 96, 16);
        assert_pb_matches_baseline(
            &reqs,
            TimingParams::test_fast(),
            4,
            &format!("queue-pressure seed {seed}"),
        );
    }
}

#[test]
fn pb_data_sequence_matches_baseline_across_refreshes() {
    // A tiny tREFI forces many refresh windows inside the run, so command
    // issue is repeatedly interrupted mid-transaction. The contract (and
    // the shadow checker's independent refresh model) must survive that.
    let timing = TimingParams {
        t_refi: 60,
        t_rfc: 10,
        ..TimingParams::test_fast()
    };
    for seed in [7u64, 13, 37] {
        let reqs = gen_multibank(seed, 80, 10);
        assert_pb_matches_baseline(&reqs, timing.clone(), 64, &format!("refresh seed {seed}"));
        for policy in [
            SchedulerPolicy::TransactionBased,
            SchedulerPolicy::proactive(),
        ] {
            let (_, trace) = run_traced(policy, &reqs, timing.clone(), 64);
            let mut shadow =
                sim_verify::ShadowTimingChecker::new(DramGeometry::test_small(), timing.clone());
            for ev in &trace {
                shadow.observe(ev.cycle, ev.cmd);
            }
            assert!(
                shadow.is_clean(),
                "refresh seed {seed} {policy:?}: {:?}",
                shadow.violations().first()
            );
        }
    }
}
