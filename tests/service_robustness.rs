//! Robustness goldens for the `oram-service` front-end.
//!
//! Everything here is exact: the service runs on virtual time with seeded
//! arrival processes, so repeat runs must agree byte for byte, overload
//! storms must walk the governor through precisely the expected states,
//! and the fixed-rate submission envelope must be bit-identical across
//! different tenant loads (the timing-channel check).

use oram_service::{GovernorState, OramService, ServiceConfig, SubmissionPolicy, TenantSpec};
use string_oram::{ServiceSummary, SimReport};
use trace_synth::ArrivalSpec;

/// A ≥4× overload storm: two tenants whose combined arrival rate dwarfs
/// the configured submission rate, with deadlines short enough that deep
/// queues time requests out.
fn storm_cfg(policy: SubmissionPolicy) -> ServiceConfig {
    let mut cfg = ServiceConfig::test_small(
        vec![
            TenantSpec::new("alpha", ArrivalSpec::steady(24.0)),
            TenantSpec::new("beta", ArrivalSpec::bursty(12.0, 4.0)),
        ],
        12_000,
    );
    cfg.policy = policy;
    cfg.deadline_cycles = 3_000;
    cfg.retry_budget = 1;
    // Watermarks under which the storm can climb the whole ladder: the
    // degraded quota (0.9) still admits enough load for total fill to
    // cross shed_enter (0.8). (Under the defaults, quota 0.5 caps fill
    // below shed_enter 0.9 for slow ramps — Shedding then only triggers
    // on single-tick bursts.)
    cfg.governor.degrade_enter = 0.5;
    cfg.governor.degrade_exit = 0.25;
    cfg.governor.shed_enter = 0.8;
    cfg.governor.shed_exit = 0.4;
    cfg.governor.degraded_quota = 0.9;
    cfg
}

fn run(cfg: ServiceConfig) -> (SimReport, ServiceSummary, GovernorState) {
    let mut svc = OramService::new(cfg).expect("valid config");
    let report = svc.run().expect("terminates");
    let state = svc.governor_state();
    let summary = report.service.clone().expect("service summary attached");
    (report, summary, state)
}

/// Exact conservation laws every run must satisfy, per tenant: each
/// arrival resolves exactly once, each admitted request either completes
/// or times out, and the queue never outgrew its cap.
fn assert_conservation(cfg: &ServiceConfig, summary: &ServiceSummary) {
    for (spec, t) in cfg.tenants.iter().zip(&summary.tenants) {
        assert_eq!(
            t.resolved(),
            t.arrivals,
            "tenant {}: exactly once",
            t.tenant
        );
        assert_eq!(
            t.completed + t.timed_out,
            t.admitted,
            "tenant {}: admitted requests complete or time out",
            t.tenant
        );
        assert_eq!(
            t.rejected(),
            t.arrivals - t.admitted,
            "tenant {}: sheds account for every unadmitted arrival",
            t.tenant
        );
        assert!(
            t.queue_depth_high_water <= spec.queue_cap,
            "tenant {}: high water {} exceeds cap {}",
            t.tenant,
            t.queue_depth_high_water,
            spec.queue_cap
        );
    }
}

#[test]
fn repeat_runs_are_byte_identical() {
    let make = || run(storm_cfg(SubmissionPolicy::BestEffort { batch: 4 }));
    let (ra, sa, _) = make();
    let (rb, sb, _) = make();
    // The service summary derives PartialEq — compare it exactly,
    // including every tenant's p999.
    assert_eq!(sa, sb);
    for (a, b) in sa.tenants.iter().zip(&sb.tenants) {
        assert_eq!(a.latency.p999, b.latency.p999, "tenant {}", a.tenant);
    }
    // The full report (floats included) must render identically too.
    assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
}

#[test]
fn overload_storm_walks_the_governor_and_recovers_best_effort() {
    let cfg = storm_cfg(SubmissionPolicy::BestEffort { batch: 4 });
    let (report, summary, final_state) = run(cfg.clone());
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_conservation(&cfg, &summary);
    // The storm must push the governor all the way up...
    assert!(
        summary.governor.degraded_entries >= 1,
        "{:?}",
        summary.governor
    );
    assert!(summary.governor.shed_entries >= 1, "{:?}", summary.governor);
    // ...shed real load while there...
    let shed: u64 = summary.tenants.iter().map(|t| t.rejected_shed).sum();
    let throttled: u64 = summary.tenants.iter().map(|t| t.rejected_throttled).sum();
    assert!(shed > 0, "shedding state must refuse arrivals");
    assert!(throttled > 0, "degraded state must tighten quotas");
    // ...and the drain must bring it all the way back down.
    assert!(summary.governor.recoveries >= 1, "{:?}", summary.governor);
    assert_eq!(final_state, GovernorState::Healthy, "drain ends healthy");
    // Overload with short deadlines must exercise the timeout path.
    let timed_out: u64 = summary.tenants.iter().map(|t| t.timed_out).sum();
    assert!(timed_out > 0, "storm deadlines must expire");
}

#[test]
fn overload_storm_audits_cleanly_under_fixed_rate() {
    let cfg = storm_cfg(SubmissionPolicy::FixedRate {
        interval: 256,
        batch: 1,
    });
    let (report, summary, final_state) = run(cfg.clone());
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_conservation(&cfg, &summary);
    assert!(summary.governor.shed_entries >= 1, "{:?}", summary.governor);
    assert_eq!(final_state, GovernorState::Healthy);
    // The cadence never pauses while draining, so the slot count is at
    // least one batch per interval tick inside the horizon.
    let in_horizon_slots = 12_000u64.div_ceil(256);
    assert!(
        summary.real_accesses + summary.padding_accesses >= in_horizon_slots,
        "cadence must hold through the storm: {} + {} < {in_horizon_slots}",
        summary.real_accesses,
        summary.padding_accesses
    );
}

#[test]
fn fixed_rate_schedule_is_load_invariant() {
    // Two very different tenant populations — a trickle and a flood —
    // under the same fixed-rate policy and horizon. The submission
    // envelope (and hence its digest) must be bit-identical: request
    // timing cannot reach the schedule.
    let policy = SubmissionPolicy::FixedRate {
        interval: 128,
        batch: 2,
    };
    let mut light = ServiceConfig::test_small(
        vec![TenantSpec::new("trickle", ArrivalSpec::steady(0.5))],
        10_000,
    );
    light.policy = policy;
    let mut heavy = ServiceConfig::test_small(
        vec![
            TenantSpec::new("flood-a", ArrivalSpec::steady(30.0)),
            TenantSpec::new("flood-b", ArrivalSpec::bursty(10.0, 6.0)),
            TenantSpec::new("flood-c", ArrivalSpec::diurnal(20.0, 2_000, 0.8)),
        ],
        10_000,
    );
    heavy.policy = policy;
    heavy.deadline_cycles = 4_000;
    let (ra, sa, _) = run(light);
    let (rb, sb, _) = run(heavy);
    assert!(ra.violations.is_empty(), "{:?}", ra.violations);
    assert!(rb.violations.is_empty(), "{:?}", rb.violations);
    assert_eq!(
        sa.schedule_digest, sb.schedule_digest,
        "submission envelope must not depend on tenant load"
    );
    // Sanity: the loads really were different — the padding mix shifts
    // even though the envelope does not.
    assert!(sa.padding_accesses > sb.padding_accesses);
    assert!(sb.real_accesses > sa.real_accesses);
}

#[test]
fn expired_requests_never_retire_twice() {
    // Deadlines far below the engine's access latency: every dispatched
    // request times out (and burns its one retry) before its data comes
    // back, so the engine's completions all arrive late. None may resolve
    // a request a second time.
    let mut cfg = ServiceConfig::test_small(
        vec![TenantSpec::new("impatient", ArrivalSpec::steady(8.0))],
        8_000,
    );
    cfg.deadline_cycles = 50;
    cfg.retry_budget = 1;
    let (report, summary, _) = run(cfg.clone());
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_conservation(&cfg, &summary);
    let t = &summary.tenants[0];
    assert!(t.timed_out > 0, "50-cycle deadlines must expire");
    assert!(t.retries > 0, "the retry budget must be exercised");
    assert!(
        t.late_completions > 0,
        "engine completions after timeout must be counted, not re-retired"
    );
    // The work still happened: the engine dispatched real accesses even
    // though their requesters had given up.
    assert!(summary.real_accesses > 0);
}
