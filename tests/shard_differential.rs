//! Shard-differential tests: the sharded parallel engine must be a pure
//! repartitioning of the unsharded pipeline, never a different machine.
//!
//! Three contracts are pinned here:
//!
//! * **`shards = 1` identity** — the sharded engine configured with one
//!   shard is *bit-identical* to [`Simulation`]: same access digest (pinned
//!   as a golden constant below), same `SimReport` field for field. One
//!   shard means no trace repartitioning, no seed derivation, no tree
//!   shrinking — any divergence is a bug in the engine's plumbing.
//! * **Thread-interleaving determinism** — for `shards ∈ {2, 4}` the
//!   merged digest and merged report are identical across repeated runs
//!   with the same master seed, regardless of how the OS schedules the
//!   shard threads (the merge folds in shard-id order, never arrival
//!   order).
//! * **Backend independence survives sharding** — the merged digest is a
//!   fold of per-shard planner digests, which never see timing, so the
//!   cycle-accurate and fast functional backends must agree shard for
//!   shard.
//!
//! A single core keeps per-shard access order a pure function of the
//! trace (same argument as `backend_differential`).

use string_oram::{BackendKind, Scheme, ShardedSimulation, SimReport, Simulation, SystemConfig};
use trace_synth::{by_name, TraceGenerator, TraceRecord};

/// Golden access digest for the canonical run below (`test_small`, ALL
/// scheme, one core, workload `black`, trace seed 11, 200 records, master
/// seed from `test_small`). Pins the planner's bus-visible access sequence
/// across refactors of the sharded engine *and* the unsharded pipeline —
/// if this changes, the simulated machine changed, not just the code.
const GOLDEN_DIGEST: u64 = 0x8FEF_A689_12F2_C2F5;

fn canonical_cfg(shards: usize, backend: BackendKind) -> SystemConfig {
    let mut cfg = SystemConfig::test_small(Scheme::All);
    cfg.cores = 1;
    cfg.shards = shards;
    cfg.backend = backend;
    cfg
}

fn canonical_trace() -> Vec<Vec<TraceRecord>> {
    vec![TraceGenerator::new(by_name("black").unwrap(), 11, 0).take_records(200)]
}

fn run_sharded(shards: usize, backend: BackendKind) -> (ShardedSimulation, SimReport) {
    let mut sim = ShardedSimulation::new(canonical_cfg(shards, backend), canonical_trace());
    sim.set_label(format!("shard-diff-{shards}"));
    let report = sim.run(50_000_000).expect("sharded run completes");
    (sim, report)
}

/// The golden pin: the unsharded pipeline and the one-shard engine both
/// produce the frozen digest on the canonical run.
#[test]
fn golden_digest_is_pinned() {
    let mut unsharded = Simulation::new(
        canonical_cfg(1, BackendKind::CycleAccurate),
        canonical_trace(),
    );
    unsharded.run(50_000_000).expect("unsharded run completes");
    assert_eq!(
        unsharded.access_digest(),
        GOLDEN_DIGEST,
        "unsharded access digest moved off the golden value: 0x{:016X}",
        unsharded.access_digest()
    );

    let (sharded, _) = run_sharded(1, BackendKind::CycleAccurate);
    assert_eq!(
        sharded.merged_digest(),
        GOLDEN_DIGEST,
        "one-shard merged digest moved off the golden value: 0x{:016X}",
        sharded.merged_digest()
    );
}

/// `shards = 1` is bit-identical to the unsharded pipeline: every
/// `SimReport` field agrees, not just the digest. The reports are compared
/// by their complete `Debug` rendering (which covers every field including
/// the float-valued means and the energy model) after aligning the labels.
#[test]
fn one_shard_report_is_bit_identical_to_unsharded() {
    let mut unsharded = Simulation::new(
        canonical_cfg(1, BackendKind::CycleAccurate),
        canonical_trace(),
    );
    unsharded.set_label("shard-diff-1");
    unsharded.run(50_000_000).expect("unsharded run completes");
    let base = unsharded.report();

    let (sharded, merged) = run_sharded(1, BackendKind::CycleAccurate);

    // Field-by-field on the load-bearing counters first, for readable
    // failures...
    assert_eq!(sharded.merged_digest(), unsharded.access_digest());
    assert_eq!(merged.shards, 1);
    assert_eq!(merged.total_cycles, base.total_cycles);
    assert_eq!(merged.makespan_cycles, base.makespan_cycles);
    assert_eq!(merged.cycles_by_kind, base.cycles_by_kind);
    assert_eq!(merged.instructions, base.instructions);
    assert_eq!(merged.oram_accesses, base.oram_accesses);
    assert_eq!(merged.transactions_by_kind, base.transactions_by_kind);
    assert_eq!(merged.row_class_by_kind, base.row_class_by_kind);
    assert_eq!(merged.protocol, base.protocol);
    assert_eq!(merged.resilience, base.resilience);
    assert_eq!(merged.requests_completed, base.requests_completed);
    assert_eq!(merged.read_latency, base.read_latency);
    assert_eq!(merged.violations, base.violations);

    // ...then the whole report, floats and all: bit-identical.
    assert_eq!(format!("{merged:?}"), format!("{base:?}"));
}

/// Thread-interleaving determinism: two runs with the same master seed
/// produce identical merged digests, identical per-shard digests and
/// identical merged counters, for both tested shard counts.
#[test]
fn sharded_runs_are_deterministic_across_repeats() {
    for shards in [2usize, 4] {
        let (a, ra) = run_sharded(shards, BackendKind::CycleAccurate);
        let (b, rb) = run_sharded(shards, BackendKind::CycleAccurate);
        assert_eq!(
            a.merged_digest(),
            b.merged_digest(),
            "{shards} shards: merged digest not reproducible"
        );
        assert_eq!(a.shard_digests(), b.shard_digests());
        assert_eq!(ra.total_cycles, rb.total_cycles);
        assert_eq!(ra.makespan_cycles, rb.makespan_cycles);
        assert_eq!(ra.transactions_by_kind, rb.transactions_by_kind);
        assert_eq!(ra.protocol, rb.protocol);
        assert_eq!(ra.read_latency, rb.read_latency);
        assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
        assert!(ra.violations.is_empty(), "{:?}", ra.violations);
    }
}

/// Parallel construction is deterministic: building the engine twice gives
/// bit-identical machines — same derived per-shard seeds, same pre-run
/// reports shard for shard — and running both gives identical digests.
/// Construction happens on worker threads for `N > 1`, so this pins that
/// thread scheduling during *setup* (not just during the run) has no
/// observable effect; `N = 1` covers the inline construction path.
#[test]
fn parallel_construction_is_deterministic_across_repeats() {
    for shards in [1usize, 2, 4] {
        let mut a = ShardedSimulation::new(
            canonical_cfg(shards, BackendKind::FastFunctional),
            canonical_trace(),
        );
        let mut b = ShardedSimulation::new(
            canonical_cfg(shards, BackendKind::FastFunctional),
            canonical_trace(),
        );
        assert_eq!(a.shard_count(), shards);
        assert_eq!(a.shard_count(), b.shard_count());
        for (sa, sb) in a.shards().iter().zip(b.shards().iter()) {
            assert_eq!(sa.config().seed, sb.config().seed, "{shards} shards");
            assert_eq!(
                format!("{:?}", sa.report()),
                format!("{:?}", sb.report()),
                "{shards} shards: pre-run shard state differs"
            );
        }
        a.run(50_000_000).expect("first engine completes");
        b.run(50_000_000).expect("second engine completes");
        assert_eq!(a.merged_digest(), b.merged_digest(), "{shards} shards");
        assert_eq!(a.shard_digests(), b.shard_digests(), "{shards} shards");
    }
}

/// The merged digest is backend-independent: per-shard planners never see
/// timing, so the cycle-accurate and functional backends observe the same
/// per-shard access sequences and hence the same fold.
#[test]
fn sharded_backends_agree_on_merged_digest() {
    for shards in [1usize, 2, 4] {
        let (slow, rs) = run_sharded(shards, BackendKind::CycleAccurate);
        let (fast, rf) = run_sharded(shards, BackendKind::FastFunctional);
        assert_eq!(
            slow.merged_digest(),
            fast.merged_digest(),
            "{shards} shards: backends diverge"
        );
        assert_eq!(slow.shard_digests(), fast.shard_digests());
        assert_eq!(rs.transactions_by_kind, rf.transactions_by_kind);
        assert_eq!(rs.protocol, rf.protocol);
        assert_eq!(rs.instructions, rf.instructions);
        assert_eq!(rs.oram_accesses, rf.oram_accesses);
    }
}

/// Different shard counts are different machines (smaller trees, different
/// seed streams) — their digests must *not* collide, or the golden pin
/// above would be vacuous.
#[test]
fn shard_counts_produce_distinct_digests() {
    let d1 = run_sharded(1, BackendKind::FastFunctional)
        .0
        .merged_digest();
    let d2 = run_sharded(2, BackendKind::FastFunctional)
        .0
        .merged_digest();
    let d4 = run_sharded(4, BackendKind::FastFunctional)
        .0
        .merged_digest();
    assert_ne!(d1, d2);
    assert_ne!(d2, d4);
    assert_ne!(d1, d4);
}

/// The program work is invariant under sharding: the same 200-record trace
/// produces the same number of ORAM accesses and retired instructions no
/// matter how the address space is partitioned.
#[test]
fn program_work_is_invariant_under_sharding() {
    let (_, r1) = run_sharded(1, BackendKind::CycleAccurate);
    for shards in [2usize, 4] {
        let (_, r) = run_sharded(shards, BackendKind::CycleAccurate);
        assert_eq!(r.oram_accesses, r1.oram_accesses, "{shards} shards");
        assert_eq!(r.instructions, r1.instructions, "{shards} shards");
        assert_eq!(
            r.transactions_by_kind.get("read"),
            r1.transactions_by_kind.get("read"),
            "{shards} shards: program read paths"
        );
    }
}
