//! Property-style tests on the sharding layer, driven by the in-repo
//! deterministic PRNG (`oram-rng`) in the seeded-enumeration style of
//! `protocol_properties` — no external crates, identical cases offline.
//!
//! Three families of invariants:
//!
//! * the shard map is a **partition**: no block routes to two shards, every
//!   (shard, local) pair round-trips to a unique global block;
//! * per-shard RNG streams derived with [`oram_rng::derive_stream_seed`]
//!   are pairwise non-overlapping over their first 10 000 draws;
//! * the merged report of a sharded run is the exact **sum** of its
//!   per-shard reports, counter for counter.

use std::collections::HashSet;

use oram_rng::{derive_stream_seed, Rng, StdRng};
use ring_oram::{BlockId, ShardMap};
use string_oram::{BackendKind, Scheme, ShardedSimulation, SystemConfig};
use trace_synth::{by_name, TraceGenerator, TraceRecord};

/// Number of random cases per cheap property (mirrors `protocol_properties`).
const CASES: u64 = 64;

/// Cases for the full-system sum property — each case runs a complete
/// sharded simulation, so the count is kept smaller than [`CASES`].
const SIM_CASES: u64 = 12;

/// The shard map is a function and a partition: a block routes to exactly
/// one shard, and the (shard, local) decomposition round-trips.
#[test]
fn no_block_maps_to_two_shards() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let shards = 1usize << rng.gen_range(0u32..5); // 1, 2, 4, 8, 16
        let map = ShardMap::new(shards).unwrap();
        for _ in 0..256 {
            let b = BlockId(rng.gen_range(0u64..1 << 20));
            let s = map.shard_of(b);
            assert!(s < shards);
            // Routing is consistent with the decomposition: the same block
            // decomposes to exactly one (shard, local) pair and back.
            assert_eq!(map.global_block(s, map.local_block(b)), b);
            // ...and no *other* shard reconstructs this block from any
            // local address (globals of shard t all route to t).
            let t = (s + 1) % shards;
            if shards > 1 {
                let foreign = map.global_block(t, map.local_block(b));
                assert_ne!(foreign, b);
                assert_eq!(map.shard_of(foreign), t);
            }
        }
    }
}

/// Exhaustive small-range check: partitioning a contiguous block range
/// assigns every block to exactly one shard, and the per-shard local
/// addresses are themselves collision-free.
#[test]
fn contiguous_range_partitions_exactly_once() {
    for shards in [1usize, 2, 4, 8] {
        let map = ShardMap::new(shards).unwrap();
        let mut locals: Vec<HashSet<u64>> = vec![HashSet::new(); shards];
        let mut counts = vec![0u64; shards];
        for b in 0..4096u64 {
            let s = map.shard_of(BlockId(b));
            counts[s] += 1;
            assert!(
                locals[s].insert(map.local_block(BlockId(b)).0),
                "local collision in shard {s} for block {b}"
            );
        }
        // Low-bit routing splits a contiguous range perfectly evenly.
        assert!(counts.iter().all(|&c| c == 4096 / shards as u64));
    }
}

/// Derived per-shard RNG streams never collide in their first 10 000
/// draws: the seed derivation decorrelates shard randomness well enough
/// that no value (let alone a subsequence) is shared between streams.
#[test]
fn shard_rng_streams_are_pairwise_non_overlapping() {
    for case in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(case);
        let master: u64 = rng.gen_range(0u64..u64::MAX);
        let streams: Vec<HashSet<u64>> = (0..8u64)
            .map(|s| {
                let mut r = StdRng::seed_from_u64(derive_stream_seed(master, s));
                (0..10_000).map(|_| r.next_u64()).collect()
            })
            .collect();
        for i in 0..streams.len() {
            // Distinct derived seeds in the first place.
            assert_ne!(
                derive_stream_seed(master, i as u64),
                master,
                "stream {i} must not reuse the master seed"
            );
            for j in i + 1..streams.len() {
                assert!(
                    streams[i].is_disjoint(&streams[j]),
                    "master {master:#x}: streams {i} and {j} overlap"
                );
            }
        }
    }
}

fn traces_for(cfg: &SystemConfig, workload: &str, seed: u64, n: usize) -> Vec<Vec<TraceRecord>> {
    (0..cfg.cores)
        .map(|c| TraceGenerator::new(by_name(workload).unwrap(), seed, c as u32).take_records(n))
        .collect()
}

/// The merged report is the exact sum of the per-shard reports: every
/// extensive counter, the transaction mix, the protocol statistics and the
/// pooled latency sample count — with `makespan_cycles` the max, not the
/// sum.
#[test]
fn per_shard_counters_sum_to_merged_totals() {
    let schemes = [Scheme::Baseline, Scheme::Cb, Scheme::Pb, Scheme::All];
    let workloads = ["black", "libq", "stream"];
    for case in 0..SIM_CASES {
        let mut rng = StdRng::seed_from_u64(0x5AD + case);
        let shards = 1usize << rng.gen_range(1u32..3); // 2 or 4
        let scheme = schemes[rng.gen_range(0usize..schemes.len())];
        let workload = workloads[rng.gen_range(0usize..workloads.len())];
        let records = rng.gen_range(30usize..70);

        let mut cfg = SystemConfig::test_small(scheme);
        cfg.shards = shards;
        cfg.backend = BackendKind::FastFunctional;
        let traces = traces_for(&cfg, workload, 7 + case, records);
        let mut sim = ShardedSimulation::new(cfg, traces);
        let merged = sim.run(50_000_000).expect("sharded run completes");
        let ctx = format!("case {case}: {shards} shards, {scheme}, {workload}×{records}");

        assert_eq!(merged.shards, shards, "{ctx}");
        assert!(
            merged.violations.is_empty(),
            "{ctx}: {:?}",
            merged.violations
        );

        let per_shard: Vec<_> = sim.shards().iter().map(|s| s.report()).collect();
        let sum = |f: fn(&string_oram::SimReport) -> u64| per_shard.iter().map(f).sum::<u64>();

        assert_eq!(merged.oram_accesses, sum(|r| r.oram_accesses), "{ctx}");
        assert_eq!(merged.instructions, sum(|r| r.instructions), "{ctx}");
        assert_eq!(merged.total_cycles, sum(|r| r.total_cycles), "{ctx}");
        assert_eq!(
            merged.requests_completed,
            sum(|r| r.requests_completed),
            "{ctx}"
        );
        assert_eq!(
            merged.makespan_cycles,
            per_shard.iter().map(|r| r.total_cycles).max().unwrap(),
            "{ctx}: makespan is the slowest shard"
        );
        assert_eq!(
            merged.read_latency.samples,
            per_shard
                .iter()
                .map(|r| r.read_latency.samples)
                .sum::<u64>(),
            "{ctx}: pooled latency population"
        );

        // Cycle attribution sums bucket-wise and stays complete.
        assert_eq!(
            merged.cycles_by_kind.total(),
            sum(|r| r.cycles_by_kind.total()),
            "{ctx}"
        );
        assert_eq!(merged.cycles_by_kind.total(), merged.total_cycles, "{ctx}");

        // The transaction mix sums key-wise.
        let mut kinds: HashSet<&str> = HashSet::new();
        for r in &per_shard {
            kinds.extend(r.transactions_by_kind.keys().copied());
        }
        for kind in kinds {
            let want: u64 = per_shard
                .iter()
                .filter_map(|r| r.transactions_by_kind.get(kind))
                .sum();
            assert_eq!(
                merged.transactions_by_kind.get(kind).copied().unwrap_or(0),
                want,
                "{ctx}: transactions_by_kind[{kind}]"
            );
        }

        // The protocol layer merges via its own fold; reproducing that
        // fold over the per-shard stats must land on the merged value.
        let mut proto = per_shard[0].protocol.clone();
        for r in &per_shard[1..] {
            proto.merge_from(&r.protocol);
        }
        assert_eq!(merged.protocol, proto, "{ctx}");

        // And the digest fold is reproducible from the shard digests.
        let folded = sim
            .shard_digests()
            .iter()
            .enumerate()
            .fold(0u64, |acc, (s, d)| acc ^ d.rotate_left(s as u32));
        assert_eq!(sim.merged_digest(), folded, "{ctx}");
    }
}
