//! Whole-system fuzzing: random configurations x random traces must always
//! complete, keep every invariant, and account for every cycle and request.

use proptest::prelude::*;

use mem_sched::{PagePolicy, SchedulerPolicy};
use string_oram::{LayoutKind, Scheme, Simulation, SystemConfig};
use trace_synth::TraceRecord;

#[derive(Debug, Clone)]
struct FuzzConfig {
    scheme_sel: u8,
    levels: u32,
    z: u32,
    s_extra: u32,
    a: u32,
    y_frac: u8,
    cached: u32,
    stash: usize,
    cores: usize,
    mlp: usize,
    layout_naive: bool,
    page_closed: bool,
    load: u8,
    lookahead: u64,
}

fn fuzz_config() -> impl Strategy<Value = FuzzConfig> {
    (
        (0u8..4, 10u32..=13, 2u32..=8, 0u32..=6, 1u32..=8),
        (0u8..=2, 0u32..=4, 30usize..200, 1usize..=2, 1usize..=4),
        (any::<bool>(), any::<bool>(), 0u8..=9, 1u64..=3),
    )
        .prop_map(
            |(
                (scheme_sel, levels, z, s_extra, a),
                (y_frac, cached, stash, cores, mlp),
                (layout_naive, page_closed, load, lookahead),
            )| FuzzConfig {
                scheme_sel,
                levels,
                z,
                s_extra,
                a,
                y_frac,
                cached,
                stash,
                cores,
                mlp,
                layout_naive,
                page_closed,
                load,
                lookahead,
            },
        )
}

fn build(f: &FuzzConfig) -> SystemConfig {
    let scheme = match f.scheme_sel {
        0 => Scheme::Baseline,
        1 => Scheme::Cb,
        2 => Scheme::Pb,
        _ => Scheme::All,
    };
    let mut cfg = SystemConfig::test_small(scheme);
    cfg.ring.levels = f.levels;
    cfg.ring.z = f.z;
    cfg.ring.s = f.a + f.s_extra; // S = A + X, the paper's rule
    cfg.ring.a = f.a;
    // y applied only when the scheme uses CB; bounded by min(z, s).
    if scheme.uses_cb() {
        cfg.ring.y = (f.z.min(cfg.ring.s) * u32::from(f.y_frac)) / 2;
        cfg.ring.y = cfg.ring.y.min(f.z).min(cfg.ring.s);
    } else {
        cfg.ring.y = 0;
    }
    cfg.ring.tree_top_cached_levels = f.cached.min(f.levels - 1);
    cfg.ring.stash_capacity = f.stash;
    cfg.cores = f.cores;
    cfg.core_mlp = f.mlp;
    cfg.layout = if f.layout_naive {
        LayoutKind::Naive
    } else {
        LayoutKind::Subtree
    };
    cfg.page_policy = if f.page_closed {
        PagePolicy::Closed
    } else {
        PagePolicy::Open
    };
    cfg.load_factor = f64::from(f.load) / 10.0 * 0.8; // 0.0..=0.72
    if scheme.uses_pb() {
        cfg.policy = SchedulerPolicy::ProactiveBank {
            lookahead: f.lookahead,
        };
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_configuration_completes_consistently(
        f in fuzz_config(),
        blocks in proptest::collection::vec(0u64..128, 5..40),
        seed in any::<u64>(),
    ) {
        let cfg = build(&f);
        prop_assume!(cfg.validate().is_ok());
        let trace: Vec<TraceRecord> = blocks
            .iter()
            .map(|&b| TraceRecord::new((b % 7) as u32, b, b % 2 == 0))
            .collect();
        let traces: Vec<Vec<TraceRecord>> =
            (0..cfg.cores).map(|_| trace.clone()).collect();
        let mut sim = Simulation::new(cfg.clone(), traces);
        sim.set_label(format!("fuzz-{seed}"));
        let r = sim.run(500_000_000).expect("must complete");

        // Conservation laws.
        prop_assert_eq!(r.oram_accesses, (blocks.len() * cfg.cores) as u64);
        prop_assert_eq!(r.cycles_by_kind.total(), r.total_cycles);
        let classified: u64 = r.row_class_by_kind.values().map(|c| c.total()).sum();
        prop_assert_eq!(classified, r.requests_completed);
        prop_assert!(r.instructions > 0);

        // Protocol-level invariants after the run.
        sim.oram().check_invariants();

        // Baseline schedulers never issue early commands.
        if !matches!(cfg.policy, SchedulerPolicy::ProactiveBank { .. }) {
            prop_assert_eq!(r.early_precharge_fraction, 0.0);
            prop_assert_eq!(r.early_activate_fraction, 0.0);
        }
    }

    #[test]
    fn identical_runs_are_bit_identical(
        f in fuzz_config(),
        seed in any::<u64>(),
    ) {
        let cfg = build(&f);
        prop_assume!(cfg.validate().is_ok());
        let trace: Vec<TraceRecord> =
            (0..25).map(|i| TraceRecord::new(3, seed % 50 + i, i % 3 == 0)).collect();
        let run = || {
            let traces: Vec<Vec<TraceRecord>> =
                (0..cfg.cores).map(|_| trace.clone()).collect();
            let mut sim = Simulation::new(cfg.clone(), traces);
            sim.run(500_000_000).expect("completes")
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.total_cycles, b.total_cycles);
        prop_assert_eq!(a.requests_completed, b.requests_completed);
        prop_assert_eq!(a.cycles_by_kind, b.cycles_by_kind);
    }
}
