//! Whole-system fuzzing: random configurations x random traces must always
//! complete, keep every invariant, and account for every cycle and request.
//! Cases are drawn from the in-repo deterministic PRNG so the suite replays
//! bit-identically offline.

use mem_sched::{PagePolicy, SchedulerPolicy};
use oram_rng::{Rng, StdRng};
use string_oram::{LayoutKind, Scheme, Simulation, SystemConfig};
use trace_synth::TraceRecord;

const CASES: u64 = 24;

#[derive(Debug, Clone)]
struct FuzzConfig {
    scheme_sel: u8,
    levels: u32,
    z: u32,
    s_extra: u32,
    a: u32,
    y_frac: u8,
    cached: u32,
    stash: usize,
    cores: usize,
    mlp: usize,
    layout_naive: bool,
    page_closed: bool,
    load: u8,
    lookahead: u64,
}

fn fuzz_config(rng: &mut StdRng) -> FuzzConfig {
    FuzzConfig {
        scheme_sel: rng.gen_range(0u8..4),
        levels: rng.gen_range(10u32..14),
        z: rng.gen_range(2u32..9),
        s_extra: rng.gen_range(0u32..7),
        a: rng.gen_range(1u32..9),
        y_frac: rng.gen_range(0u8..3),
        cached: rng.gen_range(0u32..5),
        stash: rng.gen_range(30usize..200),
        cores: rng.gen_range(1usize..3),
        mlp: rng.gen_range(1usize..5),
        layout_naive: rng.gen::<bool>(),
        page_closed: rng.gen::<bool>(),
        load: rng.gen_range(0u8..10),
        lookahead: rng.gen_range(1u64..4),
    }
}

fn build(f: &FuzzConfig) -> SystemConfig {
    let scheme = match f.scheme_sel {
        0 => Scheme::Baseline,
        1 => Scheme::Cb,
        2 => Scheme::Pb,
        _ => Scheme::All,
    };
    let mut cfg = SystemConfig::test_small(scheme);
    cfg.ring.levels = f.levels;
    cfg.ring.z = f.z;
    cfg.ring.s = f.a + f.s_extra; // S = A + X, the paper's rule
    cfg.ring.a = f.a;
    // y applied only when the scheme uses CB; bounded by min(z, s).
    if scheme.uses_cb() {
        cfg.ring.y = (f.z.min(cfg.ring.s) * u32::from(f.y_frac)) / 2;
        cfg.ring.y = cfg.ring.y.min(f.z).min(cfg.ring.s);
    } else {
        cfg.ring.y = 0;
    }
    cfg.ring.tree_top_cached_levels = f.cached.min(f.levels - 1);
    cfg.ring.stash_capacity = f.stash;
    cfg.cores = f.cores;
    cfg.core_mlp = f.mlp;
    cfg.layout = if f.layout_naive {
        LayoutKind::Naive
    } else {
        LayoutKind::Subtree
    };
    cfg.page_policy = if f.page_closed {
        PagePolicy::Closed
    } else {
        PagePolicy::Open
    };
    cfg.load_factor = f64::from(f.load) / 10.0 * 0.8; // 0.0..=0.72
    if scheme.uses_pb() {
        cfg.sched_policy = SchedulerPolicy::ProactiveBank {
            lookahead: f.lookahead,
        };
    }
    cfg
}

#[test]
fn any_configuration_completes_consistently() {
    let mut checked = 0u64;
    // Walk seeds until CASES valid configurations have been exercised, so
    // invalid draws (rejected by validate()) don't shrink coverage.
    for case in 0.. {
        let mut rng = StdRng::seed_from_u64(case);
        let f = fuzz_config(&mut rng);
        let cfg = build(&f);
        if cfg.validate().is_err() {
            continue;
        }
        let n_blocks = rng.gen_range(5usize..40);
        let blocks: Vec<u64> = (0..n_blocks).map(|_| rng.gen_range(0u64..128)).collect();
        let seed = rng.gen::<u64>();
        let trace: Vec<TraceRecord> = blocks
            .iter()
            .map(|&b| TraceRecord::new((b % 7) as u32, b, b % 2 == 0))
            .collect();
        let traces: Vec<Vec<TraceRecord>> = (0..cfg.cores).map(|_| trace.clone()).collect();
        let mut sim = Simulation::new(cfg.clone(), traces);
        sim.set_label(format!("fuzz-{seed}"));
        let r = sim.run(500_000_000).expect("must complete");

        // Conservation laws.
        assert_eq!(r.oram_accesses, (blocks.len() * cfg.cores) as u64);
        assert_eq!(r.cycles_by_kind.total(), r.total_cycles);
        let classified: u64 = r.row_class_by_kind.values().map(|c| c.total()).sum();
        assert_eq!(classified, r.requests_completed);
        assert!(r.instructions > 0);

        // Protocol-level invariants after the run.
        sim.oram().check_invariants();

        // Baseline schedulers never issue early commands.
        if !matches!(cfg.sched_policy, SchedulerPolicy::ProactiveBank { .. }) {
            assert_eq!(r.early_precharge_fraction, 0.0);
            assert_eq!(r.early_activate_fraction, 0.0);
        }

        checked += 1;
        if checked == CASES {
            break;
        }
    }
}

#[test]
fn identical_runs_are_bit_identical() {
    let mut checked = 0u64;
    for case in 0.. {
        let mut rng = StdRng::seed_from_u64(case ^ 0x5EED);
        let f = fuzz_config(&mut rng);
        let cfg = build(&f);
        if cfg.validate().is_err() {
            continue;
        }
        let seed = rng.gen::<u64>();
        let trace: Vec<TraceRecord> = (0..25)
            .map(|i| TraceRecord::new(3, seed % 50 + i, i % 3 == 0))
            .collect();
        let run = || {
            let traces: Vec<Vec<TraceRecord>> = (0..cfg.cores).map(|_| trace.clone()).collect();
            let mut sim = Simulation::new(cfg.clone(), traces);
            sim.run(500_000_000).expect("completes")
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.requests_completed, b.requests_completed);
        assert_eq!(a.cycles_by_kind, b.cycles_by_kind);

        checked += 1;
        if checked == CASES {
            break;
        }
    }
}
