//! End-to-end conformance: every scheme, run with the `sim-verify` checkers
//! enabled, must produce zero violations — and deliberately broken machines
//! must be *caught*. The negative tests are the evidence that the passive
//! checkers actually constrain anything.

use std::collections::VecDeque;

use dram_sim::geometry::DramGeometry;
use dram_sim::timing::TimingParams;
use dram_sim::{AddressMapping, CommandKind, DramLocation, DramModule};
use mem_sched::{MemoryController, RequestSpec, SchedulerPolicy, TxnId};
use oram_rng::{Rng, StdRng};
use sim_verify::ShadowTimingChecker;
use string_oram::{Scheme, Simulation, SystemConfig};
use trace_synth::{by_name, TraceGenerator, TraceRecord};

const WORKLOADS: [&str; 3] = ["stream", "libq", "black"];
const SEEDS: [u64; 3] = [11, 23, 47];

fn traces_for(
    cfg: &SystemConfig,
    workload: &str,
    seed: u64,
    records: usize,
) -> Vec<Vec<TraceRecord>> {
    (0..cfg.cores)
        .map(|c| {
            TraceGenerator::new(by_name(workload).expect("known workload"), seed, c as u32)
                .take_records(records)
        })
        .collect()
}

fn run_checked(scheme: Scheme, workload: &str, seed: u64) -> string_oram::SimReport {
    // test_small presets ship with the shadow timing checker, the txn-order
    // oracle and the ORAM auditor all enabled.
    let cfg = SystemConfig::test_small(scheme);
    assert!(cfg.verify.shadow_timing && cfg.verify.oram_audit);
    let traces = traces_for(&cfg, workload, seed, 60);
    let mut sim = Simulation::new(cfg, traces);
    sim.set_label(format!("{workload}-{scheme:?}-{seed}"));
    sim.run(50_000_000).expect("completes")
}

/// Every scheme, on every workload and seed, passes every independent
/// check: JEDEC timing, transaction ordering, and ORAM protocol invariants.
#[test]
fn checked_simulations_are_violation_free() {
    for scheme in [Scheme::Baseline, Scheme::Cb, Scheme::Pb, Scheme::All] {
        for workload in WORKLOADS {
            for seed in SEEDS {
                let r = run_checked(scheme, workload, seed);
                assert!(
                    r.violations.is_empty(),
                    "{}: {} violations, first: {}",
                    r.label,
                    r.violations.len(),
                    r.violations[0]
                );
                assert!(r.oram_accesses > 0);
            }
        }
    }
}

/// System-level differential: PB performs exactly the same *program* work
/// as the transaction-based baseline (same ORAM accesses, same program
/// read-path transactions), violation-free, and never slower. Dummy read
/// paths and the evictions/reshuffles they trigger are timing-dependent
/// (background eviction fills idle slots), so totals over those kinds may
/// legitimately differ between schedulers.
#[test]
fn pb_matches_baseline_work_end_to_end() {
    for workload in WORKLOADS {
        for seed in SEEDS {
            let base = run_checked(Scheme::Baseline, workload, seed);
            let pb = run_checked(Scheme::Pb, workload, seed);
            assert!(base.violations.is_empty() && pb.violations.is_empty());
            assert_eq!(pb.oram_accesses, base.oram_accesses, "{workload}/{seed}");
            assert_eq!(
                pb.transactions_by_kind.get("read"),
                base.transactions_by_kind.get("read"),
                "{workload}/{seed}"
            );
            assert!(
                pb.total_cycles <= base.total_cycles,
                "{workload}/{seed}: PB {} cycles > baseline {}",
                pb.total_cycles,
                base.total_cycles
            );
        }
    }
}

/// Builds a legal command trace straight from the memory controller.
fn legal_trace(seed: u64) -> Vec<(u64, dram_sim::DramCommand)> {
    let geometry = DramGeometry::test_small();
    let mapping = AddressMapping::hpca_default(&geometry);
    let dram = DramModule::new(geometry, TimingParams::test_fast());
    let mut ctrl =
        MemoryController::new(dram, mapping.clone(), SchedulerPolicy::TransactionBased, 64);
    ctrl.enable_command_trace();
    let mut rng = StdRng::seed_from_u64(seed);
    let geometry = DramGeometry::test_small();
    let mut reqs: Vec<(u64, DramLocation, bool)> = (0..48)
        .map(|_| {
            let loc = DramLocation {
                channel: rng.gen_range(0..geometry.channels),
                rank: 0,
                bank: rng.gen_range(0..geometry.banks_per_rank),
                row: rng.gen_range(0..geometry.rows_per_bank),
                column: rng.gen_range(0..geometry.columns_per_row),
            };
            (rng.gen_range(0u64..8), loc, rng.gen_bool(0.4))
        })
        .collect();
    reqs.sort_by_key(|r| r.0);
    let mut pending: VecDeque<RequestSpec> = reqs
        .iter()
        .map(|&(txn, loc, is_write)| RequestSpec {
            addr: mapping.encode(&loc),
            is_write,
            txn: TxnId(txn),
        })
        .collect();
    let mut cycle = 0;
    while !pending.is_empty() || ctrl.pending() > 0 {
        while let Some(&spec) = pending.front() {
            if ctrl.try_enqueue(spec, cycle).is_ok() {
                pending.pop_front();
            } else {
                break;
            }
        }
        ctrl.tick(cycle);
        ctrl.drain_completed();
        cycle += 1;
        assert!(cycle < 1_000_000, "controller wedged");
    }
    ctrl.take_command_trace()
}

/// The shadow checker accepts the real controller's trace, and catches a
/// deliberately injected reordering bug: swapping a (ACT, column-command)
/// pair on the same bank makes the column command run against a bank state
/// it was never legal for.
#[test]
fn shadow_checker_catches_injected_reordering() {
    let geometry = DramGeometry::test_small();
    let timing = TimingParams::test_fast();
    for seed in SEEDS {
        let trace = legal_trace(seed);
        let mut clean = ShadowTimingChecker::new(geometry.clone(), timing.clone());
        assert!(
            clean.check_trace(&trace).is_empty(),
            "seed {seed}: legal trace must be accepted"
        );

        // Inject the bug: find an ACT immediately answered by a RD/WR on
        // the same bank and swap the two commands' positions in time — the
        // classic "scheduler issued the column command before its row was
        // open" reordering defect.
        let mut broken = trace.clone();
        let idx = broken
            .windows(2)
            .position(|w| {
                w[0].1.kind == CommandKind::Activate
                    && w[1].1.kind.carries_data()
                    && w[0].1.loc.channel == w[1].1.loc.channel
                    && w[0].1.loc.bank == w[1].1.loc.bank
            })
            .expect("trace contains an ACT->column pair");
        let (c0, c1) = (broken[idx].0, broken[idx + 1].0);
        broken[idx].0 = c1;
        broken[idx + 1].0 = c0;
        broken.swap(idx, idx + 1);

        let mut checker = ShadowTimingChecker::new(geometry.clone(), timing.clone());
        let violations = checker.check_trace(&broken);
        assert!(
            !violations.is_empty(),
            "seed {seed}: injected reordering went undetected"
        );
    }
}

/// An insecure scheduler that ignores the transaction barrier must trip the
/// transaction-order oracle, and `fail_fast` must turn that into a panic.
#[test]
#[should_panic(expected = "conformance violation")]
fn unconstrained_scheduler_trips_fail_fast() {
    let mut cfg = SystemConfig::test_small(Scheme::Baseline);
    cfg.sched_policy = SchedulerPolicy::Unconstrained;
    cfg.verify.fail_fast = true;
    cfg.validate().expect("config is structurally valid");
    let traces = traces_for(&cfg, "libq", 7, 80);
    let mut sim = Simulation::new(cfg, traces);
    let _ = sim.run(50_000_000);
}
